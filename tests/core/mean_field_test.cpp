// Mean-field evaluator validation (docs/perf.md §6): the discrete
// fidelity must agree with the event/slot kernels' observed utility —
// the mean-field value sits inside the simulated confidence interval —
// across scenario families (homogeneous step/exponential/power-cost,
// community class rates, N = 500 event-kernel), plus deterministic
// algebra checks on the gain table and the QCR fluid ODE. Runs under
// `ctest -L sim`.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "impatience/alloc/rounding.hpp"
#include "impatience/core/experiment.hpp"
#include "impatience/core/mean_field.hpp"
#include "impatience/trace/generators.hpp"
#include "impatience/utility/families.hpp"

namespace impatience::core {
namespace {

/// Wide (z = 2.8, ~99.5%) confidence interval of a sample mean: the
/// mean-field value is the *exact* expectation for frozen placements, so
/// a 95% interval would flag it ~1 time in 20 by construction; the wider
/// band keeps the fixed-seed checks comfortably deterministic while
/// still catching real model errors (which show up as many-sigma gaps).
struct Interval {
  double lo;
  double hi;
};

Interval confidence_interval(const std::vector<double>& samples) {
  const double n = static_cast<double>(samples.size());
  double mean = 0.0;
  for (double s : samples) mean += s;
  mean /= n;
  double var = 0.0;
  for (double s : samples) var += (s - mean) * (s - mean);
  var /= (n - 1.0);
  const double half = 2.8 * std::sqrt(var / n);
  return {mean - half, mean + half};
}

void expect_in_ci(const std::vector<double>& samples, double exact,
                  const char* what) {
  const Interval ci = confidence_interval(samples);
  EXPECT_TRUE(ci.lo <= exact && exact <= ci.hi)
      << what << ": mean-field " << exact << " outside sim CI [" << ci.lo
      << ", " << ci.hi << "]";
}

/// One frozen-placement trial on a fresh trace: trace and simulation RNGs
/// both derive from `seed` (fresh traces, unlike the kernel-equivalence
/// suite, because the mean-field value is an expectation over traces).
double frozen_sample(const trace::PoissonTraceParams& params,
                     const Catalog& catalog,
                     const utility::DelayUtility& u,
                     const alloc::Placement& placement, int capacity,
                     SimKernel kernel, std::uint64_t seed) {
  util::Rng gen(9000 + seed);
  const auto tr = trace::generate_poisson(params, gen);
  SimOptions options;
  options.cache_capacity = capacity;
  options.kernel = kernel;
  options.sticky_replicas = false;
  options.initial_placement = placement;
  StaticPolicy policy;
  util::Rng rng(100 + seed);
  return simulate(tr, catalog, u, policy, options, rng).observed_utility();
}

MeanFieldModel model_for(const trace::PoissonTraceParams& params) {
  MeanFieldModel m;
  m.mu = params.mu;
  m.num_nodes = params.num_nodes;
  m.horizon = params.duration;
  return m;
}

/// Validates every mean-field competitor value against frozen-placement
/// simulations of the same integer counts.
void expect_competitors_match(const trace::PoissonTraceParams& params,
                              const Catalog& catalog,
                              const utility::DelayUtility& u, int capacity,
                              SimKernel kernel, int seeds) {
  const MeanFieldModel m = model_for(params);
  const auto competitors =
      mean_field_competitors(catalog.demands(), u, m, capacity);
  for (const auto& [name, counts] : competitors) {
    if (name == "DOM") continue;  // starves items; covered in Fig4 bench
    const double mf = mean_field_welfare(counts, catalog.demands(), u, m);
    util::Rng prng(4242);
    const auto placement =
        alloc::place_counts(counts, params.num_nodes, capacity, prng);
    std::vector<double> samples;
    for (int s = 0; s < seeds; ++s) {
      samples.push_back(frozen_sample(params, catalog, u, placement,
                                      capacity, kernel,
                                      static_cast<std::uint64_t>(s)));
    }
    expect_in_ci(samples, mf, name.c_str());
  }
}

// --------------------------------------------------------------------
// Family A: homogeneous contacts, step utility, slot kernel, N = 100.

TEST(MeanFieldValidation, StepUtilityHomogeneousN100) {
  trace::PoissonTraceParams params{100, 800, 0.02};
  const auto catalog = Catalog::pareto(20, 1.0, 1.0);
  utility::StepUtility u(10.0);
  expect_competitors_match(params, catalog, u, 4, SimKernel::slot_stepped,
                           16);
}

// Family B: exponential decay and power-cost utilities, N = 100.

TEST(MeanFieldValidation, ExponentialUtilityHomogeneousN100) {
  trace::PoissonTraceParams params{100, 800, 0.02};
  const auto catalog = Catalog::pareto(20, 1.0, 1.0);
  utility::ExponentialUtility u(0.05);
  expect_competitors_match(params, catalog, u, 4, SimKernel::slot_stepped,
                           16);
}

TEST(MeanFieldValidation, PowerCostUtilityHomogeneousN100) {
  trace::PoissonTraceParams params{100, 600, 0.03};
  const auto catalog = Catalog::pareto(15, 1.0, 1.0);
  utility::PowerUtility u(0.5);  // h(t) = -2 sqrt(t): a waiting cost
  expect_competitors_match(params, catalog, u, 3, SimKernel::slot_stepped,
                           16);
}

// Family C: class-based (community) contact rates.

TEST(MeanFieldValidation, CommunityClassRatesN100) {
  trace::CommunityTraceParams params;
  params.num_nodes = 100;
  params.duration = 800;
  params.num_communities = 4;
  params.intra_rate = 0.05;
  params.inter_rate = 0.002;
  const auto catalog = Catalog::pareto(20, 1.0, 1.0);
  utility::StepUtility u(10.0);
  const int capacity = 4;

  // A mean-rate-tuned UNI placement, split into per-class counts.
  const MeanFieldClassModel cm = community_class_model(params);
  util::Rng prng(77);
  const auto counts = alloc::round_counts(
      alloc::uniform_allocation(catalog.num_items(),
                                capacity * static_cast<double>(
                                               params.num_nodes),
                                params.num_nodes),
      static_cast<int>(params.num_nodes));
  const auto placement =
      alloc::place_counts(counts, params.num_nodes, capacity, prng);
  const auto by_class =
      counts_by_community(placement, params.num_communities);
  const double mf =
      mean_field_welfare_classes(by_class, catalog.demands(), u, cm);

  std::vector<double> samples;
  for (int s = 0; s < 16; ++s) {
    util::Rng gen(9000 + static_cast<std::uint64_t>(s));
    const auto tr = trace::generate_community_trace(params, gen);
    SimOptions options;
    options.cache_capacity = capacity;
    options.sticky_replicas = false;
    options.initial_placement = placement;
    StaticPolicy policy;
    util::Rng rng(100 + static_cast<std::uint64_t>(s));
    samples.push_back(
        simulate(tr, catalog, u, policy, options, rng).observed_utility());
  }
  expect_in_ci(samples, mf, "community UNI");
}

TEST(MeanFieldClassModelTest, DegeneratesToHomogeneousOnEqualRates) {
  // Equal intra/inter rates and counts split proportional to class size
  // must reproduce the homogeneous evaluator exactly.
  const double mu = 0.02;
  MeanFieldClassModel cm;
  cm.class_sizes = {25.0, 25.0, 25.0, 25.0};
  cm.rates.assign(4, std::vector<double>(4, mu));
  cm.horizon = 500;
  utility::ExponentialUtility u(0.1);

  MeanFieldModel hm;
  hm.mu = mu;
  hm.num_nodes = 100;
  hm.horizon = 500;

  const std::vector<double> demand = {1.0, 0.5, 0.25};
  alloc::ItemCounts total;
  total.x = {8.0, 4.0, 12.0};  // all divisible by 4 classes
  std::vector<alloc::ItemCounts> split(4);
  for (auto& c : split) {
    c.x = {2.0, 1.0, 3.0};
  }
  const double classes = mean_field_welfare_classes(split, demand, u, cm);
  const double homogeneous = mean_field_welfare(total, demand, u, hm);
  EXPECT_NEAR(classes, homogeneous, 1e-12 + 1e-9 * std::abs(homogeneous));
}

// Family D: larger sparse system on the event kernel, N = 500.

TEST(MeanFieldValidation, EventKernelN500) {
  trace::PoissonTraceParams params{500, 200, 0.01};
  const auto catalog = Catalog::pareto(30, 1.0, 1.0);
  utility::StepUtility u(15.0);
  const MeanFieldModel m = model_for(params);
  const auto counts = alloc::round_counts(
      alloc::sqrt_allocation(catalog.demands(),
                             3.0 * static_cast<double>(params.num_nodes),
                             params.num_nodes),
      static_cast<int>(params.num_nodes));
  const double mf = mean_field_welfare(counts, catalog.demands(), u, m);
  util::Rng prng(4242);
  const auto placement =
      alloc::place_counts(counts, params.num_nodes, 3, prng);
  std::vector<double> samples;
  for (int s = 0; s < 8; ++s) {
    samples.push_back(frozen_sample(params, catalog, u, placement, 3,
                                    SimKernel::event_driven,
                                    static_cast<std::uint64_t>(s)));
  }
  expect_in_ci(samples, mf, "SQRT @ N=500");
}

// --------------------------------------------------------------------
// Deterministic algebra checks.

TEST(CensoredDiscreteGain, StepUtilityZeroHazardClosedForm) {
  // q = 0: every request is censored; with h = 1{t <= tau} the average
  // censored mass is the tau - 1 creation slots whose final age stays
  // within the deadline (ages run 2..T+1 for k = 1..T).
  utility::StepUtility u(10.0);
  const double g = alloc::censored_geometric_gain(u, 0.0, 800);
  EXPECT_NEAR(g, 9.0 / 800.0, 1e-12);
}

TEST(CensoredDiscreteGain, DeterministicHazardClosedForm) {
  // q = 1: fulfilment at the first opportunity, gain h(1) regardless of
  // the creation slot.
  utility::ExponentialUtility u(0.3);
  const double g = alloc::censored_geometric_gain(u, 1.0, 500);
  EXPECT_NEAR(g, u.value(1.0), 1e-12);
}

TEST(CensoredDiscreteGain, TableMatchesDirectEvaluation) {
  utility::ExponentialUtility u(0.07);
  alloc::DiscreteGainModel m;
  m.mu = 0.03;
  m.num_nodes = 60;
  m.horizon = 400;
  const alloc::DiscreteGainTable table(u, m, 60);
  for (long x : {0L, 1L, 2L, 7L, 30L, 60L}) {
    EXPECT_NEAR(table.gain(static_cast<double>(x)),
                alloc::item_gain_discrete(u, m, static_cast<double>(x)),
                1e-12)
        << "x=" << x;
  }
  // Interpolation: halfway between the integer anchors.
  const double mid = table.gain(7.5);
  EXPECT_NEAR(mid, 0.5 * (table.gain(7.0) + table.gain(8.0)), 1e-12);
  // Marginals are first differences of the same table.
  EXPECT_NEAR(table.marginal(7), table.gain(8.0) - table.gain(7.0), 1e-15);
}

TEST(CensoredDiscreteGain, ConvergesToContinuousClosedFormForSmallMu) {
  // As mu -> 0 with a horizon far beyond the utility's support, the
  // discrete censored-geometric model approaches the continuous-time
  // exponential-race closed form used by alloc::item_gain.
  utility::ExponentialUtility u(0.05);
  MeanFieldModel discrete;
  discrete.mu = 0.002;
  discrete.num_nodes = 200;
  discrete.horizon = 40000;
  discrete.fidelity = MeanFieldFidelity::kDiscrete;
  MeanFieldModel continuous = discrete;
  continuous.fidelity = MeanFieldFidelity::kContinuous;
  const MeanFieldEvaluator d(u, discrete);
  const MeanFieldEvaluator c(u, continuous);
  for (double x : {1.0, 5.0, 20.0, 80.0}) {
    EXPECT_NEAR(d.item_gain(x), c.item_gain(x),
                0.02 * std::abs(c.item_gain(x)) + 1e-4)
        << "x=" << x;
  }
}

TEST(CensoredDiscreteGain, UnboundedAtZeroThrows) {
  utility::PowerUtility u(1.5);  // 1 < alpha < 2: h(0+) = +inf
  alloc::DiscreteGainModel m;
  EXPECT_THROW(alloc::item_gain_discrete(u, m, 3.0), std::domain_error);
  MeanFieldModel mf;
  EXPECT_THROW(MeanFieldEvaluator(u, mf), std::domain_error);
}

TEST(MeanFieldGreedy, MatchesHomogeneousGreedyInContinuousMode) {
  const auto catalog = Catalog::pareto(12, 1.0, 1.0);
  utility::StepUtility u(10.0);
  MeanFieldModel m;
  m.mu = 0.05;
  m.num_nodes = 50;
  m.horizon = 0;  // automatic -> continuous
  const auto counts = mean_field_greedy(catalog.demands(), u, m, 150);
  alloc::HomogeneousModel hm;
  hm.mu = 0.05;
  hm.num_servers = 50;
  hm.num_clients = 50;
  const auto reference =
      alloc::homogeneous_greedy(catalog.demands(), u, hm, 150);
  ASSERT_EQ(counts.x.size(), reference.x.size());
  for (std::size_t i = 0; i < counts.x.size(); ++i) {
    EXPECT_DOUBLE_EQ(counts.x[i], reference.x[i]) << "item " << i;
  }
}

TEST(MeanFieldGreedy, DiscreteGreedyIsCapacityTightAndUndominated) {
  const auto catalog = Catalog::pareto(20, 1.0, 1.0);
  utility::StepUtility u(10.0);
  MeanFieldModel m;
  m.mu = 0.02;
  m.num_nodes = 100;
  m.horizon = 800;
  const long capacity = 400;
  const auto opt = mean_field_greedy(catalog.demands(), u, m, capacity);
  EXPECT_NEAR(opt.total(), static_cast<double>(capacity), 1e-9);
  const double w_opt = mean_field_welfare(opt, catalog.demands(), u, m);
  // Greedy must not lose to the heuristics it competes against.
  for (const auto& [name, counts] :
       mean_field_competitors(catalog.demands(), u, m, 4)) {
    const double w = mean_field_welfare(counts, catalog.demands(), u, m);
    EXPECT_GE(w_opt, w - 1e-9) << name;
  }
}

// --------------------------------------------------------------------
// QCR fluid ODE: conservation, the sticky floor, and agreement with the
// simulated QCR within a loose band (the ODE replaces the stochastic
// query counter with its mean, so this is an approximation, not the
// exact expectation the frozen-placement checks enjoy).

TEST(MeanFieldQcr, ConservesMassAndRespectsStickyFloor) {
  const auto catalog = Catalog::pareto(20, 1.0, 1.0);
  utility::StepUtility u(10.0);
  MeanFieldModel m;
  m.mu = 0.02;
  m.num_nodes = 100;
  m.horizon = 800;
  const auto r = mean_field_qcr(catalog.demands(), u, m, 4);
  EXPECT_GT(r.steps, 0);
  double total = 0.0;
  for (double x : r.final_counts.x) {
    EXPECT_GE(x, 1.0 - 1e-9);
    EXPECT_LE(x, 100.0 + 1e-9);
    total += x;
  }
  EXPECT_NEAR(total, 400.0, 1e-6);
  EXPECT_TRUE(std::isfinite(r.mean_welfare_rate));
  EXPECT_TRUE(std::isfinite(r.final_welfare_rate));
}

TEST(MeanFieldQcr, TracksSimulatedQcrWithinLooseBand) {
  trace::PoissonTraceParams params{100, 800, 0.02};
  const auto catalog = Catalog::pareto(20, 1.0, 1.0);
  utility::StepUtility u(10.0);
  MeanFieldModel m = model_for(params);
  const auto mf = mean_field_qcr(catalog.demands(), u, m, 4);

  std::vector<double> samples;
  for (int s = 0; s < 8; ++s) {
    util::Rng gen(9000 + static_cast<std::uint64_t>(s));
    Scenario scenario{trace::generate_poisson(params, gen), catalog, 4,
                      params.mu};
    SimOptions options;
    util::Rng rng(100 + static_cast<std::uint64_t>(s));
    samples.push_back(run_qcr(scenario, u, QcrOptions{}, options, rng)
                          .observed_utility());
  }
  double sim_mean = 0.0;
  for (double s : samples) sim_mean += s;
  sim_mean /= static_cast<double>(samples.size());
  EXPECT_NEAR(mf.mean_welfare_rate, sim_mean, 0.35 * std::abs(sim_mean))
      << "fluid QCR diverged from simulated QCR";
}

}  // namespace
}  // namespace impatience::core
