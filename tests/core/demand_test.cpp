#include "impatience/core/demand.hpp"

#include <gtest/gtest.h>

namespace impatience::core {
namespace {

TEST(DemandProcess, MeanRequestRate) {
  const auto catalog = Catalog::pareto(10, 1.0, 2.0);
  DemandProcess demand(catalog, {0, 1, 2, 3});
  util::Rng rng(1);
  std::size_t total = 0;
  const int slots = 20000;
  for (int s = 0; s < slots; ++s) total += demand.sample_slot(rng).size();
  EXPECT_NEAR(static_cast<double>(total) / slots, 2.0, 0.05);
}

TEST(DemandProcess, ItemPopularityFollowsCatalog) {
  Catalog catalog({3.0, 1.0});
  DemandProcess demand(catalog, {0});
  util::Rng rng(2);
  std::size_t hits0 = 0, total = 0;
  for (int s = 0; s < 20000; ++s) {
    for (const auto& r : demand.sample_slot(rng)) {
      ++total;
      if (r.item == 0) ++hits0;
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_NEAR(static_cast<double>(hits0) / static_cast<double>(total), 0.75,
              0.02);
}

TEST(DemandProcess, UniformNodeAssignment) {
  Catalog catalog({1.0});
  DemandProcess demand(catalog, {5, 6, 7});
  util::Rng rng(3);
  std::vector<std::size_t> hits(10, 0);
  std::size_t total = 0;
  for (int s = 0; s < 30000; ++s) {
    for (const auto& r : demand.sample_slot(rng)) {
      ++hits[r.node];
      ++total;
    }
  }
  EXPECT_EQ(hits[0], 0u);  // only listed clients get requests
  for (NodeId n = 5; n <= 7; ++n) {
    EXPECT_NEAR(static_cast<double>(hits[n]) / static_cast<double>(total),
                1.0 / 3.0, 0.02);
  }
}

TEST(DemandProcess, WeightedNodeProfile) {
  Catalog catalog({1.0});
  DemandProcess demand(catalog, {0, 1}, {{3.0, 1.0}});
  util::Rng rng(4);
  std::size_t hits0 = 0, total = 0;
  for (int s = 0; s < 30000; ++s) {
    for (const auto& r : demand.sample_slot(rng)) {
      ++total;
      if (r.node == 0) ++hits0;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits0) / static_cast<double>(total), 0.75,
              0.02);
}

TEST(DemandProcess, Validation) {
  Catalog catalog({1.0, 1.0});
  EXPECT_THROW(DemandProcess(catalog, {}), std::invalid_argument);
  EXPECT_THROW(DemandProcess(catalog, {0}, {{1.0}}), std::invalid_argument);
  EXPECT_THROW(DemandProcess(catalog, {0}, {{1.0}, {1.0, 2.0}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace impatience::core
