#include "impatience/core/catalog.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace impatience::core {
namespace {

TEST(Catalog, BasicAccess) {
  Catalog c({2.0, 1.0, 0.5});
  EXPECT_EQ(c.num_items(), 3u);
  EXPECT_DOUBLE_EQ(c.demand(1), 1.0);
  EXPECT_DOUBLE_EQ(c.total_demand(), 3.5);
}

TEST(Catalog, ParetoShape) {
  const auto c = Catalog::pareto(4, 1.0, 1.0);
  // d_i proportional to 1/(i+1).
  EXPECT_NEAR(c.demand(0) / c.demand(1), 2.0, 1e-12);
  EXPECT_NEAR(c.demand(0) / c.demand(3), 4.0, 1e-12);
  EXPECT_NEAR(c.total_demand(), 1.0, 1e-12);
}

TEST(Catalog, ParetoOmegaZeroIsUniform) {
  const auto c = Catalog::pareto(5, 0.0, 10.0);
  for (ItemId i = 0; i < 5; ++i) {
    EXPECT_NEAR(c.demand(i), 2.0, 1e-12);
  }
}

TEST(Catalog, ParetoHigherOmegaMoreSkewed) {
  const auto flat = Catalog::pareto(10, 0.5, 1.0);
  const auto steep = Catalog::pareto(10, 2.0, 1.0);
  EXPECT_GT(steep.demand(0) / steep.demand(9),
            flat.demand(0) / flat.demand(9));
}

TEST(Catalog, ByPopularityOrder) {
  Catalog c({1.0, 5.0, 3.0});
  const auto order = c.by_popularity();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(order[2], 0u);
}

TEST(Catalog, ParetoIsSortedByConstruction) {
  const auto c = Catalog::pareto(20, 1.0, 1.0);
  const auto order = c.by_popularity();
  for (ItemId i = 0; i < 20; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(Catalog, Validation) {
  EXPECT_THROW(Catalog({}), std::invalid_argument);
  EXPECT_THROW(Catalog({-1.0}), std::invalid_argument);
  EXPECT_THROW(Catalog({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(Catalog::pareto(0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Catalog::pareto(5, 1.0, 0.0), std::invalid_argument);
  Catalog c({1.0});
  EXPECT_THROW(c.demand(1), std::out_of_range);
}

}  // namespace
}  // namespace impatience::core
