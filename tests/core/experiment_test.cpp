#include "impatience/core/experiment.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "impatience/utility/families.hpp"

namespace impatience::core {
namespace {

using utility::StepUtility;

Scenario small_scenario(std::uint64_t seed) {
  util::Rng rng(seed);
  auto trace = trace::generate_poisson({12, 600, 0.08}, rng);
  return make_scenario(std::move(trace), Catalog::pareto(8, 1.0, 0.5), 3);
}

TEST(MakeScenario, MeasuresMuFromTrace) {
  const auto s = small_scenario(1);
  EXPECT_NEAR(s.mu, 0.08, 0.02);
  EXPECT_EQ(s.capacity, 3);
}

TEST(MakeScenario, RejectsEmptyTrace) {
  trace::ContactTrace empty(4, 10, {});
  EXPECT_THROW(make_scenario(std::move(empty), Catalog::pareto(4, 1.0, 1.0), 2),
               std::invalid_argument);
}

TEST(BuildCompetitors, ProducesTheFivePaperAllocations) {
  const auto s = small_scenario(2);
  StepUtility u(5.0);
  util::Rng rng(3);
  const auto set = build_competitors(s, u, OptMode::kHomogeneous, rng);
  ASSERT_EQ(set.size(), 5u);
  EXPECT_EQ(set[0].name, "OPT");
  EXPECT_EQ(set[1].name, "UNI");
  EXPECT_EQ(set[2].name, "SQRT");
  EXPECT_EQ(set[3].name, "PROP");
  EXPECT_EQ(set[4].name, "DOM");
}

TEST(BuildCompetitors, AllPlacementsFeasible) {
  const auto s = small_scenario(4);
  StepUtility u(5.0);
  util::Rng rng(5);
  for (auto mode : {OptMode::kHomogeneous, OptMode::kEstimated}) {
    const auto set = build_competitors(s, u, mode, rng);
    for (const auto& [name, placement] : set) {
      for (NodeId server = 0; server < placement.num_servers(); ++server) {
        EXPECT_LE(placement.server_load(server), s.capacity) << name;
      }
    }
  }
}

TEST(BuildCompetitors, DomPutsTopItemsEverywhere) {
  const auto s = small_scenario(6);
  StepUtility u(5.0);
  util::Rng rng(7);
  const auto set = build_competitors(s, u, OptMode::kHomogeneous, rng);
  const auto& dom = set[4].placement;
  for (ItemId i = 0; i < 3; ++i) {  // rho = 3 most popular (Pareto order)
    EXPECT_EQ(dom.count(i), 12);
  }
  for (ItemId i = 3; i < 8; ++i) {
    EXPECT_EQ(dom.count(i), 0);
  }
}

TEST(BuildCompetitors, UniIsFlat) {
  const auto s = small_scenario(8);
  StepUtility u(5.0);
  util::Rng rng(9);
  const auto set = build_competitors(s, u, OptMode::kHomogeneous, rng);
  const auto counts = set[1].placement.counts();
  // 36 slots over 8 items: every item gets 4 or 5 copies.
  for (double c : counts.x) {
    EXPECT_GE(c, 4.0);
    EXPECT_LE(c, 5.0);
  }
}

TEST(RunFixed, NamesResultAndFreezesCaches) {
  const auto s = small_scenario(10);
  StepUtility u(5.0);
  util::Rng rng(11);
  const auto set = build_competitors(s, u, OptMode::kHomogeneous, rng);
  const auto result =
      run_fixed(s, u, set[0].name, set[0].placement, SimOptions{}, rng);
  EXPECT_EQ(result.policy, "OPT");
  const auto counts = set[0].placement.counts();
  for (ItemId i = 0; i < 8; ++i) {
    EXPECT_EQ(result.final_counts[i], static_cast<int>(counts.x[i]));
  }
}

TEST(RunQcr, ProducesReplicationActivity) {
  const auto s = small_scenario(12);
  StepUtility u(5.0);
  util::Rng rng(13);
  const auto result = run_qcr(s, u, QcrOptions{}, SimOptions{}, rng);
  EXPECT_EQ(result.policy, "QCR");
  EXPECT_GT(result.mandates_created, 0);
  EXPECT_GT(result.replicas_written, 0);
  const int total = std::accumulate(result.final_counts.begin(),
                                    result.final_counts.end(), 0);
  EXPECT_EQ(total, s.capacity * 12);
}

TEST(RunQcr, NoRoutingVariantNamed) {
  const auto s = small_scenario(14);
  StepUtility u(5.0);
  util::Rng rng(15);
  QcrOptions opts;
  opts.mandate_routing = false;
  const auto result = run_qcr(s, u, opts, SimOptions{}, rng);
  EXPECT_EQ(result.policy, "QCR-noMR");
}

TEST(NormalizedLoss, Signs) {
  EXPECT_DOUBLE_EQ(normalized_loss_percent(-11.0, -10.0), -10.0);
  EXPECT_DOUBLE_EQ(normalized_loss_percent(-10.0, -10.0), 0.0);
  EXPECT_DOUBLE_EQ(normalized_loss_percent(11.0, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(normalized_loss_percent(9.0, 10.0), -10.0);
  EXPECT_THROW(normalized_loss_percent(1.0, 0.0), std::invalid_argument);
}

TEST(HomogeneousWelfareProbe, MatchesDirectEvaluation) {
  const auto catalog = Catalog::pareto(4, 1.0, 1.0);
  StepUtility u(2.0);
  alloc::HomogeneousModel model{0.05, 10, 10, alloc::SystemMode::kPureP2P};
  const auto probe = homogeneous_welfare_probe(catalog, u, model);
  const std::vector<int> counts{4, 3, 2, 1};
  alloc::ItemCounts x{{4.0, 3.0, 2.0, 1.0}};
  EXPECT_NEAR(probe(std::span<const int>(counts)),
              alloc::welfare_homogeneous(x, catalog.demands(), u, model),
              1e-12);
}

}  // namespace
}  // namespace impatience::core
