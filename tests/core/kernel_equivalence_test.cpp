// Statistical equivalence of the event-driven kernel with the
// slot-stepped reference — fault-free and fault-active (geometric-skip
// crash scheduling) — plus the bit-identity locks that pin the
// slot-stepped path to the pre-PR outputs. Runs under `ctest -L sim`.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "impatience/core/experiment.hpp"
#include "impatience/engine/seeding.hpp"
#include "impatience/trace/generators.hpp"
#include "impatience/utility/families.hpp"

namespace impatience::core {
namespace {

constexpr int kSeeds = 32;  // per config and kernel

/// 95% confidence interval of a sample mean.
struct Interval {
  double lo;
  double hi;
};

Interval confidence_interval(const std::vector<double>& samples) {
  const double n = static_cast<double>(samples.size());
  double mean = 0.0;
  for (double s : samples) mean += s;
  mean /= n;
  double var = 0.0;
  for (double s : samples) var += (s - mean) * (s - mean);
  var /= (n - 1.0);
  const double half = 1.96 * std::sqrt(var / n);
  return {mean - half, mean + half};
}

void expect_overlap(const std::vector<double>& slot,
                    const std::vector<double>& event, const char* metric) {
  const Interval a = confidence_interval(slot);
  const Interval b = confidence_interval(event);
  EXPECT_TRUE(a.lo <= b.hi && b.lo <= a.hi)
      << metric << ": slot CI [" << a.lo << ", " << a.hi << "] vs event CI ["
      << b.lo << ", " << b.hi << "]";
}

void check_conservation(const SimulationResult& r) {
  // Every created request is fulfilled, censored at the horizon, or wiped
  // by a crash (requests_lost degrades the identity gracefully, see
  // docs/robustness.md).
  ASSERT_EQ(r.requests_created, r.fulfillments + r.immediate_fulfillments +
                                    r.censored_requests +
                                    r.faults.requests_lost);
  // Mandate conservation (trivially 0 == 0 for fixed placements).
  ASSERT_EQ(r.mandates_created, r.replicas_written + r.outstanding_mandates +
                                    static_cast<long>(
                                        r.faults.mandates_lost));
}

/// FaultCounters internal consistency, independent of the kernel.
void check_fault_invariants(const SimulationResult& r,
                            const fault::FaultConfig& config) {
  const auto& f = r.faults;
  EXPECT_GE(f.crashes, f.cold_restarts);
  if (f.crashes == 0) {
    EXPECT_EQ(f.replicas_lost, 0u);
    EXPECT_EQ(f.mandates_lost, 0);
    EXPECT_EQ(f.requests_lost, 0u);
  }
  if (config.p_crash == 0.0) {
    EXPECT_EQ(f.crashes, 0u);
    EXPECT_EQ(f.meetings_skipped_down, 0u);
    EXPECT_EQ(f.requests_suppressed, 0u);
  }
  if (config.p_drop == 0.0) {
    EXPECT_EQ(f.meetings_dropped, 0u);
  }
  if (config.p_duplicate == 0.0) {
    EXPECT_EQ(f.meetings_duplicated, 0u);
  }
  if (config.p_reorder == 0.0) {
    EXPECT_EQ(f.slots_reordered, 0u);
  }
  if (config.p_truncate == 0.0) {
    EXPECT_EQ(f.exchanges_truncated, 0u);
    EXPECT_EQ(f.fulfilments_deferred, 0u);
  }
  EXPECT_EQ(f.injected_events(),
            f.meetings_dropped + f.meetings_duplicated + f.slots_reordered +
                f.exchanges_truncated + f.crashes);
}

struct KernelSamples {
  std::vector<double> gain, fulfillments, delay;
};

/// Runs `trial` for kSeeds seeds under each kernel and asserts the 95%
/// CIs of total_gain / fulfillments / mean_delay overlap, with exact
/// conservation on every run.
template <typename Trial>
void expect_kernels_equivalent(Trial&& trial) {
  KernelSamples per_kernel[2];
  const SimKernel kernels[2] = {SimKernel::slot_stepped,
                                SimKernel::event_driven};
  for (int k = 0; k < 2; ++k) {
    for (int seed = 0; seed < kSeeds; ++seed) {
      const SimulationResult r = trial(kernels[k], 1000 + seed);
      check_conservation(r);
      per_kernel[k].gain.push_back(r.total_gain);
      per_kernel[k].fulfillments.push_back(
          static_cast<double>(r.fulfillments));
      per_kernel[k].delay.push_back(r.mean_delay);
    }
  }
  expect_overlap(per_kernel[0].gain, per_kernel[1].gain, "total_gain");
  expect_overlap(per_kernel[0].fulfillments, per_kernel[1].fulfillments,
                 "fulfillments");
  expect_overlap(per_kernel[0].delay, per_kernel[1].delay, "mean_delay");
}

TEST(KernelEquivalence, Fig4HomogeneousQcr) {
  util::Rng gen(11);
  auto tr = trace::generate_poisson({20, 1000, 0.05}, gen);
  auto scenario =
      make_scenario(std::move(tr), Catalog::pareto(20, 1.0, 1.0), 4);
  utility::StepUtility u(10.0);
  expect_kernels_equivalent([&](SimKernel kernel, std::uint64_t seed) {
    SimOptions options;
    options.kernel = kernel;
    util::Rng rng(seed);
    return run_qcr(scenario, u, QcrOptions{}, options, rng);
  });
}

TEST(KernelEquivalence, Fig5InfocomFixedPlacement) {
  util::Rng gen(22);
  trace::InfocomLikeParams params;
  params.num_nodes = 20;
  params.days = 1;
  auto tr = trace::generate_infocom_like(params, gen);
  auto scenario =
      make_scenario(std::move(tr), Catalog::pareto(20, 1.0, 1.0), 4);
  utility::StepUtility u(30.0);
  util::Rng prng(23);
  const auto competitors =
      build_competitors(scenario, u, OptMode::kHomogeneous, prng);
  const auto& uni = competitors[1];
  expect_kernels_equivalent([&](SimKernel kernel, std::uint64_t seed) {
    SimOptions options;
    options.kernel = kernel;
    util::Rng rng(seed);
    return run_fixed(scenario, u, uni.name, uni.placement, options, rng);
  });
}

TEST(KernelEquivalence, Fig6SparseCabspottingFixedPlacement) {
  util::Rng gen(33);
  trace::CabspottingLikeParams params;
  params.mobility.num_nodes = 20;
  params.duration = 1500;
  auto tr = trace::generate_cabspotting_like(params, gen);
  auto scenario =
      make_scenario(std::move(tr), Catalog::pareto(25, 1.0, 1.0), 4);
  utility::ExponentialUtility u(0.05);
  util::Rng prng(34);
  const auto competitors =
      build_competitors(scenario, u, OptMode::kHomogeneous, prng);
  const auto& uni = competitors[1];
  expect_kernels_equivalent([&](SimKernel kernel, std::uint64_t seed) {
    SimOptions options;
    options.kernel = kernel;
    util::Rng rng(seed);
    return run_fixed(scenario, u, uni.name, uni.placement, options, rng);
  });
}

// ---------------------------------------------------------------------
// Bit-identity locks. The expected values were captured from the tree
// immediately before the event-kernel change landed (slot-stepped is the
// bit-locked reference; see SimKernel docs). Any drift here is a
// reproducibility regression, not a tolerance issue: compare exactly.

SimulationResult run_config_a(SimKernel kernel) {
  util::Rng gen(101);
  auto tr = trace::generate_poisson({30, 1500, 0.05}, gen);
  auto scenario =
      make_scenario(std::move(tr), Catalog::pareto(30, 1.0, 1.0), 4);
  utility::StepUtility u(10.0);
  SimOptions options;
  options.kernel = kernel;
  util::Rng rng(777);
  return run_qcr(scenario, u, QcrOptions{}, options, rng);
}

SimulationResult run_config_b(SimKernel kernel) {
  util::Rng gen(202);
  trace::CabspottingLikeParams params;
  params.mobility.num_nodes = 25;
  params.duration = 2000;
  auto tr = trace::generate_cabspotting_like(params, gen);
  auto scenario =
      make_scenario(std::move(tr), Catalog::pareto(25, 1.0, 1.0), 4);
  utility::ExponentialUtility u(0.05);
  util::Rng prng(303);
  const auto competitors =
      build_competitors(scenario, u, OptMode::kHomogeneous, prng);
  SimOptions options;
  options.kernel = kernel;
  util::Rng rng(404);
  return run_fixed(scenario, u, competitors[1].name,
                   competitors[1].placement, options, rng);
}

SimulationResult run_config_c(SimKernel kernel) {
  util::Rng gen(505);
  auto tr = trace::generate_poisson({20, 1200, 0.04}, gen);
  auto scenario =
      make_scenario(std::move(tr), Catalog::pareto(20, 1.0, 1.0), 4);
  utility::StepUtility u(20.0);
  SimOptions options;
  options.kernel = kernel;
  options.faults.p_drop = 0.05;
  options.faults.p_truncate = 0.05;
  options.faults.p_duplicate = 0.02;
  options.faults.p_reorder = 0.1;
  options.faults.p_crash = 0.0005;
  options.faults.seed = 909;
  util::Rng rng(606);
  return run_qcr(scenario, u, QcrOptions{}, options, rng);
}

TEST(KernelGolden, SlotSteppedQcrMatchesPrePrCapture) {
  const auto r = run_config_a(SimKernel::slot_stepped);
  EXPECT_DOUBLE_EQ(r.total_gain, 1344.0);
  EXPECT_EQ(r.fulfillments, 1189u);
  EXPECT_EQ(r.immediate_fulfillments, 294u);
  EXPECT_EQ(r.censored_requests, 5u);
  EXPECT_EQ(r.requests_created, 1488u);
  EXPECT_DOUBLE_EQ(r.mean_delay, 5.0647603027754418);
  EXPECT_DOUBLE_EQ(r.mean_query_count, 6.6627417998317915);
}

TEST(KernelGolden, SlotSteppedFixedMatchesPrePrCapture) {
  const auto r = run_config_b(SimKernel::slot_stepped);
  EXPECT_DOUBLE_EQ(r.total_gain, 607.35286051271407);
  EXPECT_EQ(r.fulfillments, 1644u);
  EXPECT_EQ(r.immediate_fulfillments, 310u);
  EXPECT_EQ(r.censored_requests, 89u);
  EXPECT_EQ(r.requests_created, 2043u);
  EXPECT_DOUBLE_EQ(r.mean_delay, 92.50121654501217);
  EXPECT_DOUBLE_EQ(r.mean_query_count, 5.5504866180048662);
}

TEST(KernelGolden, FaultySlotSteppedMatchesPr3Capture) {
  const auto r = run_config_c(SimKernel::slot_stepped);
  EXPECT_DOUBLE_EQ(r.total_gain, 1138.0);
  EXPECT_EQ(r.fulfillments, 885u);
  EXPECT_EQ(r.immediate_fulfillments, 313u);
  EXPECT_EQ(r.censored_requests, 3u);
  EXPECT_EQ(r.requests_created, 1202u);
  EXPECT_DOUBLE_EQ(r.mean_delay, 7.5683615819209038);
  EXPECT_DOUBLE_EQ(r.mean_query_count, 5.1276836158192092);
  EXPECT_EQ(r.faults.meetings_dropped, 446u);
  EXPECT_EQ(r.faults.crashes, 7u);
}

// ---------------------------------------------------------------------
// Fault-active event kernel. Since this PR the event kernel no longer
// falls back to slot-stepping under faults: per-slot crash hazards
// become per-node geometric-skip draws (FaultPlan::next_node_crash), a
// different use of the fault streams, so the two kernels agree in
// distribution — overlapping 95% CIs — not bit for bit. The slot-stepped
// goldens above still pin the per-slot formulation exactly.

/// Churn-heavy QCR: crashes with short downtime plus truncated meetings,
/// exercising mandate loss, request loss and demand suppression under
/// both kernels.
TEST(KernelEquivalence, FaultyChurnQcr) {
  util::Rng gen(44);
  auto tr = trace::generate_poisson({20, 1200, 0.04}, gen);
  auto scenario =
      make_scenario(std::move(tr), Catalog::pareto(20, 1.0, 1.0), 4);
  utility::StepUtility u(20.0);
  fault::FaultConfig faults;
  faults.p_crash = 0.002;
  faults.mean_downtime = 15.0;
  faults.p_persist_cache = 0.3;
  faults.p_truncate = 0.15;
  expect_kernels_equivalent([&](SimKernel kernel, std::uint64_t seed) {
    SimOptions options;
    options.kernel = kernel;
    options.faults = faults;
    options.faults.seed = engine::child_seed(seed, "fault");
    util::Rng rng(seed);
    const auto r = run_qcr(scenario, u, QcrOptions{}, options, rng);
    EXPECT_GT(r.faults.injected_events(), 0u);
    check_fault_invariants(r, options.faults);
    return r;
  });
}

/// Degraded-channel fixed placement: drops, duplicates, reordering and
/// truncation with rare crashes on a sparse trace — the Fig. 3 divergence
/// pathology's channel on the event kernel's favourite terrain.
TEST(KernelEquivalence, FaultyDegradedChannelFixedPlacement) {
  util::Rng gen(55);
  trace::CabspottingLikeParams params;
  params.mobility.num_nodes = 20;
  params.duration = 1500;
  auto tr = trace::generate_cabspotting_like(params, gen);
  auto scenario =
      make_scenario(std::move(tr), Catalog::pareto(25, 1.0, 1.0), 4);
  utility::ExponentialUtility u(0.05);
  util::Rng prng(56);
  const auto competitors =
      build_competitors(scenario, u, OptMode::kHomogeneous, prng);
  const auto& uni = competitors[1];
  fault::FaultConfig faults;
  faults.p_drop = 0.1;
  faults.p_duplicate = 0.05;
  faults.p_reorder = 0.2;
  faults.p_truncate = 0.2;
  faults.p_crash = 0.001;
  faults.mean_downtime = 25.0;
  expect_kernels_equivalent([&](SimKernel kernel, std::uint64_t seed) {
    SimOptions options;
    options.kernel = kernel;
    options.faults = faults;
    options.faults.seed = engine::child_seed(seed, "fault");
    util::Rng rng(seed);
    const auto r =
        run_fixed(scenario, u, uni.name, uni.placement, options, rng);
    check_fault_invariants(r, options.faults);
    return r;
  });
}

/// The PR 3/PR 4 faulty golden config now rides the jump loop when the
/// event kernel is requested: faults must actually fire there, with exact
/// conservation — and the run must be reproducible draw for draw.
TEST(KernelGolden, FaultActiveEventKernelRidesTheJumpLoop) {
  const auto event = run_config_c(SimKernel::event_driven);
  EXPECT_GT(event.faults.meetings_dropped, 0u);
  EXPECT_GT(event.faults.crashes, 0u);
  check_conservation(event);
  const auto again = run_config_c(SimKernel::event_driven);
  EXPECT_DOUBLE_EQ(again.total_gain, event.total_gain);
  EXPECT_EQ(again.fulfillments, event.fulfillments);
  EXPECT_EQ(again.final_counts, event.final_counts);
  EXPECT_EQ(again.faults.crashes, event.faults.crashes);
}

/// A zero-probability plan on the event kernel must be bit-identical to
/// the fault-free event kernel: the fault machinery is engaged but every
/// decision draws from the plan's private streams, so the simulation RNG
/// sees the exact same sequence.
TEST(KernelGolden, ZeroProbabilityFaultEventBitIdenticalToNoFaultEvent) {
  auto run = [&](bool engage_zero_faults) {
    util::Rng gen(505);
    auto tr = trace::generate_poisson({20, 1200, 0.04}, gen);
    auto scenario =
        make_scenario(std::move(tr), Catalog::pareto(20, 1.0, 1.0), 4);
    utility::StepUtility u(20.0);
    SimOptions options;
    options.kernel = SimKernel::event_driven;
    if (engage_zero_faults) {
      options.faults.engage_when_zero = true;
      options.faults.seed = 909;
    }
    util::Rng rng(606);
    return run_qcr(scenario, u, QcrOptions{}, options, rng);
  };
  const auto plain = run(false);
  const auto zero = run(true);
  EXPECT_DOUBLE_EQ(zero.total_gain, plain.total_gain);
  EXPECT_EQ(zero.fulfillments, plain.fulfillments);
  EXPECT_EQ(zero.immediate_fulfillments, plain.immediate_fulfillments);
  EXPECT_EQ(zero.censored_requests, plain.censored_requests);
  EXPECT_EQ(zero.requests_created, plain.requests_created);
  EXPECT_DOUBLE_EQ(zero.mean_delay, plain.mean_delay);
  EXPECT_DOUBLE_EQ(zero.mean_query_count, plain.mean_query_count);
  EXPECT_EQ(zero.final_counts, plain.final_counts);
  EXPECT_FALSE(zero.faults.any());
  ASSERT_EQ(zero.observed_series.size(), plain.observed_series.size());
  for (std::size_t i = 0; i < zero.observed_series.size(); ++i) {
    EXPECT_DOUBLE_EQ(zero.observed_series[i].value,
                     plain.observed_series[i].value);
  }
}

}  // namespace
}  // namespace impatience::core
