// Statistical equivalence of the event-driven kernel with the
// slot-stepped reference, plus the bit-identity locks that pin the
// slot-stepped path (and the fault-active fallback) to the pre-PR
// outputs. Runs under `ctest -L sim`.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "impatience/core/experiment.hpp"
#include "impatience/trace/generators.hpp"
#include "impatience/utility/families.hpp"

namespace impatience::core {
namespace {

constexpr int kSeeds = 32;  // per config and kernel

/// 95% confidence interval of a sample mean.
struct Interval {
  double lo;
  double hi;
};

Interval confidence_interval(const std::vector<double>& samples) {
  const double n = static_cast<double>(samples.size());
  double mean = 0.0;
  for (double s : samples) mean += s;
  mean /= n;
  double var = 0.0;
  for (double s : samples) var += (s - mean) * (s - mean);
  var /= (n - 1.0);
  const double half = 1.96 * std::sqrt(var / n);
  return {mean - half, mean + half};
}

void expect_overlap(const std::vector<double>& slot,
                    const std::vector<double>& event, const char* metric) {
  const Interval a = confidence_interval(slot);
  const Interval b = confidence_interval(event);
  EXPECT_TRUE(a.lo <= b.hi && b.lo <= a.hi)
      << metric << ": slot CI [" << a.lo << ", " << a.hi << "] vs event CI ["
      << b.lo << ", " << b.hi << "]";
}

void check_conservation(const SimulationResult& r) {
  ASSERT_EQ(r.requests_created, r.fulfillments + r.immediate_fulfillments +
                                    r.censored_requests);
  // Mandate conservation (trivially 0 == 0 for fixed placements).
  ASSERT_EQ(r.mandates_created, r.replicas_written + r.outstanding_mandates +
                                    static_cast<long>(
                                        r.faults.mandates_lost));
}

struct KernelSamples {
  std::vector<double> gain, fulfillments, delay;
};

/// Runs `trial` for kSeeds seeds under each kernel and asserts the 95%
/// CIs of total_gain / fulfillments / mean_delay overlap, with exact
/// conservation on every run.
template <typename Trial>
void expect_kernels_equivalent(Trial&& trial) {
  KernelSamples per_kernel[2];
  const SimKernel kernels[2] = {SimKernel::slot_stepped,
                                SimKernel::event_driven};
  for (int k = 0; k < 2; ++k) {
    for (int seed = 0; seed < kSeeds; ++seed) {
      const SimulationResult r = trial(kernels[k], 1000 + seed);
      check_conservation(r);
      per_kernel[k].gain.push_back(r.total_gain);
      per_kernel[k].fulfillments.push_back(
          static_cast<double>(r.fulfillments));
      per_kernel[k].delay.push_back(r.mean_delay);
    }
  }
  expect_overlap(per_kernel[0].gain, per_kernel[1].gain, "total_gain");
  expect_overlap(per_kernel[0].fulfillments, per_kernel[1].fulfillments,
                 "fulfillments");
  expect_overlap(per_kernel[0].delay, per_kernel[1].delay, "mean_delay");
}

TEST(KernelEquivalence, Fig4HomogeneousQcr) {
  util::Rng gen(11);
  auto tr = trace::generate_poisson({20, 1000, 0.05}, gen);
  auto scenario =
      make_scenario(std::move(tr), Catalog::pareto(20, 1.0, 1.0), 4);
  utility::StepUtility u(10.0);
  expect_kernels_equivalent([&](SimKernel kernel, std::uint64_t seed) {
    SimOptions options;
    options.kernel = kernel;
    util::Rng rng(seed);
    return run_qcr(scenario, u, QcrOptions{}, options, rng);
  });
}

TEST(KernelEquivalence, Fig5InfocomFixedPlacement) {
  util::Rng gen(22);
  trace::InfocomLikeParams params;
  params.num_nodes = 20;
  params.days = 1;
  auto tr = trace::generate_infocom_like(params, gen);
  auto scenario =
      make_scenario(std::move(tr), Catalog::pareto(20, 1.0, 1.0), 4);
  utility::StepUtility u(30.0);
  util::Rng prng(23);
  const auto competitors =
      build_competitors(scenario, u, OptMode::kHomogeneous, prng);
  const auto& uni = competitors[1];
  expect_kernels_equivalent([&](SimKernel kernel, std::uint64_t seed) {
    SimOptions options;
    options.kernel = kernel;
    util::Rng rng(seed);
    return run_fixed(scenario, u, uni.name, uni.placement, options, rng);
  });
}

TEST(KernelEquivalence, Fig6SparseCabspottingFixedPlacement) {
  util::Rng gen(33);
  trace::CabspottingLikeParams params;
  params.mobility.num_nodes = 20;
  params.duration = 1500;
  auto tr = trace::generate_cabspotting_like(params, gen);
  auto scenario =
      make_scenario(std::move(tr), Catalog::pareto(25, 1.0, 1.0), 4);
  utility::ExponentialUtility u(0.05);
  util::Rng prng(34);
  const auto competitors =
      build_competitors(scenario, u, OptMode::kHomogeneous, prng);
  const auto& uni = competitors[1];
  expect_kernels_equivalent([&](SimKernel kernel, std::uint64_t seed) {
    SimOptions options;
    options.kernel = kernel;
    util::Rng rng(seed);
    return run_fixed(scenario, u, uni.name, uni.placement, options, rng);
  });
}

// ---------------------------------------------------------------------
// Bit-identity locks. The expected values were captured from the tree
// immediately before the event-kernel change landed (slot-stepped is the
// bit-locked reference; see SimKernel docs). Any drift here is a
// reproducibility regression, not a tolerance issue: compare exactly.

SimulationResult run_config_a(SimKernel kernel) {
  util::Rng gen(101);
  auto tr = trace::generate_poisson({30, 1500, 0.05}, gen);
  auto scenario =
      make_scenario(std::move(tr), Catalog::pareto(30, 1.0, 1.0), 4);
  utility::StepUtility u(10.0);
  SimOptions options;
  options.kernel = kernel;
  util::Rng rng(777);
  return run_qcr(scenario, u, QcrOptions{}, options, rng);
}

SimulationResult run_config_b(SimKernel kernel) {
  util::Rng gen(202);
  trace::CabspottingLikeParams params;
  params.mobility.num_nodes = 25;
  params.duration = 2000;
  auto tr = trace::generate_cabspotting_like(params, gen);
  auto scenario =
      make_scenario(std::move(tr), Catalog::pareto(25, 1.0, 1.0), 4);
  utility::ExponentialUtility u(0.05);
  util::Rng prng(303);
  const auto competitors =
      build_competitors(scenario, u, OptMode::kHomogeneous, prng);
  SimOptions options;
  options.kernel = kernel;
  util::Rng rng(404);
  return run_fixed(scenario, u, competitors[1].name,
                   competitors[1].placement, options, rng);
}

SimulationResult run_config_c(SimKernel kernel) {
  util::Rng gen(505);
  auto tr = trace::generate_poisson({20, 1200, 0.04}, gen);
  auto scenario =
      make_scenario(std::move(tr), Catalog::pareto(20, 1.0, 1.0), 4);
  utility::StepUtility u(20.0);
  SimOptions options;
  options.kernel = kernel;
  options.faults.p_drop = 0.05;
  options.faults.p_truncate = 0.05;
  options.faults.p_duplicate = 0.02;
  options.faults.p_reorder = 0.1;
  options.faults.p_crash = 0.0005;
  options.faults.seed = 909;
  util::Rng rng(606);
  return run_qcr(scenario, u, QcrOptions{}, options, rng);
}

TEST(KernelGolden, SlotSteppedQcrMatchesPrePrCapture) {
  const auto r = run_config_a(SimKernel::slot_stepped);
  EXPECT_DOUBLE_EQ(r.total_gain, 1344.0);
  EXPECT_EQ(r.fulfillments, 1189u);
  EXPECT_EQ(r.immediate_fulfillments, 294u);
  EXPECT_EQ(r.censored_requests, 5u);
  EXPECT_EQ(r.requests_created, 1488u);
  EXPECT_DOUBLE_EQ(r.mean_delay, 5.0647603027754418);
  EXPECT_DOUBLE_EQ(r.mean_query_count, 6.6627417998317915);
}

TEST(KernelGolden, SlotSteppedFixedMatchesPrePrCapture) {
  const auto r = run_config_b(SimKernel::slot_stepped);
  EXPECT_DOUBLE_EQ(r.total_gain, 607.35286051271407);
  EXPECT_EQ(r.fulfillments, 1644u);
  EXPECT_EQ(r.immediate_fulfillments, 310u);
  EXPECT_EQ(r.censored_requests, 89u);
  EXPECT_EQ(r.requests_created, 2043u);
  EXPECT_DOUBLE_EQ(r.mean_delay, 92.50121654501217);
  EXPECT_DOUBLE_EQ(r.mean_query_count, 5.5504866180048662);
}

TEST(KernelGolden, FaultySlotSteppedMatchesPr3Capture) {
  const auto r = run_config_c(SimKernel::slot_stepped);
  EXPECT_DOUBLE_EQ(r.total_gain, 1138.0);
  EXPECT_EQ(r.fulfillments, 885u);
  EXPECT_EQ(r.immediate_fulfillments, 313u);
  EXPECT_EQ(r.censored_requests, 3u);
  EXPECT_EQ(r.requests_created, 1202u);
  EXPECT_DOUBLE_EQ(r.mean_delay, 7.5683615819209038);
  EXPECT_DOUBLE_EQ(r.mean_query_count, 5.1276836158192092);
  EXPECT_EQ(r.faults.meetings_dropped, 446u);
  EXPECT_EQ(r.faults.crashes, 7u);
}

// Fault-active runs must route through the slot-stepped loop regardless
// of the requested kernel: asking for event_driven on config C has to
// reproduce the PR 3 outputs bit for bit.
TEST(KernelGolden, FaultActiveEventRequestFallsBackToSlotStepped) {
  const auto slot = run_config_c(SimKernel::slot_stepped);
  const auto event = run_config_c(SimKernel::event_driven);
  EXPECT_DOUBLE_EQ(event.total_gain, slot.total_gain);
  EXPECT_EQ(event.fulfillments, slot.fulfillments);
  EXPECT_EQ(event.immediate_fulfillments, slot.immediate_fulfillments);
  EXPECT_EQ(event.censored_requests, slot.censored_requests);
  EXPECT_EQ(event.requests_created, slot.requests_created);
  EXPECT_DOUBLE_EQ(event.mean_delay, slot.mean_delay);
  EXPECT_DOUBLE_EQ(event.mean_query_count, slot.mean_query_count);
  EXPECT_EQ(event.final_counts, slot.final_counts);
  EXPECT_EQ(event.faults.meetings_dropped, slot.faults.meetings_dropped);
  EXPECT_EQ(event.faults.crashes, slot.faults.crashes);
}

}  // namespace
}  // namespace impatience::core
