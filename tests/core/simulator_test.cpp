#include "impatience/core/simulator.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "impatience/alloc/welfare.hpp"
#include "impatience/trace/generators.hpp"
#include "impatience/utility/families.hpp"
#include "impatience/utility/reaction.hpp"

namespace impatience::core {
namespace {

using utility::PowerUtility;
using utility::StepUtility;

trace::ContactTrace small_trace(std::uint64_t seed, trace::NodeId n = 12,
                                Slot duration = 800, double mu = 0.08) {
  util::Rng rng(seed);
  return trace::generate_poisson({n, duration, mu}, rng);
}

SimOptions basic_options(int capacity = 3) {
  SimOptions o;
  o.cache_capacity = capacity;
  return o;
}

QcrPolicy make_qcr(const utility::DelayUtility& u, double mu, double servers,
                   QcrPolicy::MandateRouting routing =
                       QcrPolicy::MandateRouting::kOn) {
  utility::ReactionFunction reaction(u, mu, servers);
  return QcrPolicy("QCR", [reaction](double y) { return reaction(y); },
                   routing);
}

TEST(Simulator, DeterministicForFixedSeed) {
  const auto trace = small_trace(1);
  const auto catalog = Catalog::pareto(10, 1.0, 0.5);
  StepUtility u(5.0);
  auto run = [&]() {
    auto policy = make_qcr(u, 0.08, 12);
    util::Rng rng(77);
    return simulate(trace, catalog, u, policy, basic_options(), rng);
  };
  const auto r1 = run();
  const auto r2 = run();
  EXPECT_DOUBLE_EQ(r1.total_gain, r2.total_gain);
  EXPECT_EQ(r1.fulfillments, r2.fulfillments);
  EXPECT_EQ(r1.final_counts, r2.final_counts);
}

TEST(Simulator, ReplicaTotalIsConservedAtCapacity) {
  // Caches start full (random fill) and random replacement keeps them
  // full: total replicas == rho * |S| throughout.
  const auto trace = small_trace(2);
  const auto catalog = Catalog::pareto(10, 1.0, 0.5);
  StepUtility u(5.0);
  auto policy = make_qcr(u, 0.08, 12);
  util::Rng rng(5);
  const auto result =
      simulate(trace, catalog, u, policy, basic_options(3), rng);
  const int total =
      std::accumulate(result.final_counts.begin(), result.final_counts.end(),
                      0);
  EXPECT_EQ(total, 3 * 12);
}

TEST(Simulator, StickyReplicasSurvive) {
  const auto trace = small_trace(3);
  const auto catalog = Catalog::pareto(10, 1.0, 0.5);
  StepUtility u(5.0);
  auto policy = make_qcr(u, 0.08, 12);
  util::Rng rng(6);
  const auto result =
      simulate(trace, catalog, u, policy, basic_options(), rng);
  // Every item has a sticky seed (10 items <= 12 servers): count >= 1.
  for (ItemId i = 0; i < 10; ++i) {
    EXPECT_GE(result.final_counts[i], 1) << "item " << i;
  }
}

TEST(Simulator, StaticPolicyKeepsCachesFrozen) {
  const auto trace = small_trace(4);
  const auto catalog = Catalog::pareto(6, 1.0, 0.5);
  StepUtility u(5.0);
  alloc::Placement placement(6, 12, 3);
  // Every item on two fixed servers.
  for (ItemId i = 0; i < 6; ++i) {
    placement.add(i, static_cast<NodeId>(i));
    placement.add(i, static_cast<NodeId>(i + 6));
  }
  SimOptions options = basic_options();
  options.sticky_replicas = false;
  options.initial_placement = placement;
  StaticPolicy policy;
  util::Rng rng(7);
  const auto result = simulate(trace, catalog, u, policy, options, rng);
  for (ItemId i = 0; i < 6; ++i) {
    EXPECT_EQ(result.final_counts[i], 2);
  }
}

TEST(Simulator, GainsMatchStepUtilitySemantics) {
  // With a step utility, every fulfilment within tau records gain 1, so
  // total_gain <= fulfilments + immediate hits; censored pending requests
  // past tau add zero.
  const auto trace = small_trace(5);
  const auto catalog = Catalog::pareto(8, 1.0, 0.5);
  StepUtility u(1000.0);  // effectively every fulfilment gains 1
  auto policy = make_qcr(u, 0.08, 12);
  util::Rng rng(8);
  const auto result =
      simulate(trace, catalog, u, policy, basic_options(), rng);
  EXPECT_GT(result.fulfillments, 0u);
  EXPECT_NEAR(result.total_gain,
              static_cast<double>(result.fulfillments +
                                  result.immediate_fulfillments +
                                  result.censored_requests),
              1e-9);
}

TEST(Simulator, RequestAccountingBalances) {
  const auto trace = small_trace(6);
  const auto catalog = Catalog::pareto(8, 1.0, 0.5);
  StepUtility u(5.0);
  auto policy = make_qcr(u, 0.08, 12);
  util::Rng rng(9);
  const auto result =
      simulate(trace, catalog, u, policy, basic_options(), rng);
  EXPECT_EQ(result.requests_created,
            result.fulfillments + result.immediate_fulfillments +
                result.censored_requests);
}

TEST(Simulator, MeanDelayPositiveAndBounded) {
  const auto trace = small_trace(7);
  const auto catalog = Catalog::pareto(8, 1.0, 0.5);
  StepUtility u(5.0);
  auto policy = make_qcr(u, 0.08, 12);
  util::Rng rng(10);
  const auto result =
      simulate(trace, catalog, u, policy, basic_options(), rng);
  EXPECT_GE(result.mean_delay, 1.0);  // at least one slot by construction
  EXPECT_LE(result.mean_delay, static_cast<double>(trace.duration()));
  EXPECT_GE(result.mean_query_count, 1.0);
}

TEST(Simulator, ExpectedWelfareProbeSampled) {
  const auto trace = small_trace(8);
  const auto catalog = Catalog::pareto(8, 1.0, 0.5);
  StepUtility u(5.0);
  auto policy = make_qcr(u, 0.08, 12);
  SimOptions options = basic_options();
  options.metrics.sample_every = 100;
  options.expected_welfare = [](std::span<const int> counts) {
    int total = 0;
    for (int c : counts) total += c;
    return static_cast<double>(total);
  };
  util::Rng rng(11);
  const auto result = simulate(trace, catalog, u, policy, options, rng);
  ASSERT_EQ(result.expected_series.size(), 8u);  // 800 slots / 100
  for (const auto& pt : result.expected_series) {
    EXPECT_DOUBLE_EQ(pt.value, 36.0);  // replica conservation, 3 * 12
  }
}

TEST(Simulator, TrackedReplicaSeries) {
  const auto trace = small_trace(9);
  const auto catalog = Catalog::pareto(8, 1.0, 0.5);
  StepUtility u(5.0);
  auto policy = make_qcr(u, 0.08, 12);
  SimOptions options = basic_options();
  options.metrics.sample_every = 200;
  options.metrics.tracked_items = {0, 3};
  util::Rng rng(12);
  const auto result = simulate(trace, catalog, u, policy, options, rng);
  ASSERT_EQ(result.replica_series.size(), 2u);
  EXPECT_EQ(result.replica_series[0].size(), 4u);
  for (const auto& pt : result.replica_series[0]) {
    EXPECT_GE(pt.value, 1.0);  // sticky floor
    EXPECT_LE(pt.value, 12.0);
  }
}

TEST(Simulator, CensoringTogglesAccounting) {
  // A trace with zero contacts: every request is censored; with a cost
  // utility the censored total must be negative when enabled, zero when
  // disabled.
  trace::ContactTrace no_contacts(6, 300, {});
  const auto catalog = Catalog::pareto(6, 1.0, 0.5);
  PowerUtility u(0.0);  // h(t) = -t
  SimOptions with = basic_options();
  with.sticky_replicas = true;
  SimOptions without = with;
  without.censor_pending_at_end = false;

  StaticPolicy policy;
  util::Rng rng1(13), rng2(13);
  const auto censored =
      simulate(no_contacts, catalog, u, policy, with, rng1);
  const auto uncensored =
      simulate(no_contacts, catalog, u, policy, without, rng2);
  EXPECT_LT(censored.total_gain, 0.0);
  // Own-cache immediate hits gain h(0)=0; meeting fulfilments are
  // impossible; so the uncensored total is exactly 0.
  EXPECT_DOUBLE_EQ(uncensored.total_gain, 0.0);
  EXPECT_GT(uncensored.censored_requests, 0u);
}

TEST(Simulator, DedicatedPopulationSeparatesRoles) {
  const auto trace = small_trace(10, 12);
  const auto catalog = Catalog::pareto(6, 1.0, 0.5);
  StepUtility u(5.0);
  auto policy = make_qcr(u, 0.08, 6);
  SimOptions options = basic_options();
  util::Rng rng(14);
  const auto population = Population::dedicated(6, 6);
  const auto result =
      simulate(trace, catalog, u, policy, population, options, rng);
  // Clients have no caches: no immediate fulfilments possible.
  EXPECT_EQ(result.immediate_fulfillments, 0u);
  EXPECT_GT(result.fulfillments, 0u);
}

TEST(Simulator, UnboundedUtilityRejectedOnSelfHit) {
  // Pure P2P + inverse-power utility: the first own-cache hit must throw.
  const auto trace = small_trace(11);
  const auto catalog = Catalog::pareto(4, 1.0, 2.0);
  PowerUtility u(1.5);
  auto policy = make_qcr(u, 0.08, 12);
  SimOptions options = basic_options();
  util::Rng rng(15);
  EXPECT_THROW(simulate(trace, catalog, u, policy, options, rng),
               std::logic_error);
}

TEST(Simulator, Validation) {
  const auto trace = small_trace(12);
  const auto catalog = Catalog::pareto(4, 1.0, 0.5);
  StepUtility u(1.0);
  StaticPolicy policy;
  util::Rng rng(16);
  SimOptions bad = basic_options();
  bad.cache_capacity = 0;
  EXPECT_THROW(simulate(trace, catalog, u, policy, bad, rng),
               std::invalid_argument);

  Population empty;
  EXPECT_THROW(
      simulate(trace, catalog, u, policy, empty, basic_options(), rng),
      std::invalid_argument);

  Population out_of_range = Population::pure_p2p(12);
  out_of_range.servers.push_back(99);
  EXPECT_THROW(simulate(trace, catalog, u, policy, out_of_range,
                        basic_options(), rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace impatience::core
