#include "impatience/core/simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "impatience/alloc/welfare.hpp"
#include "impatience/core/experiment.hpp"
#include "impatience/trace/generators.hpp"
#include "impatience/utility/families.hpp"
#include "impatience/utility/reaction.hpp"

namespace impatience::core {
namespace {

using utility::PowerUtility;
using utility::StepUtility;

trace::ContactTrace small_trace(std::uint64_t seed, trace::NodeId n = 12,
                                Slot duration = 800, double mu = 0.08) {
  util::Rng rng(seed);
  return trace::generate_poisson({n, duration, mu}, rng);
}

SimOptions basic_options(int capacity = 3) {
  SimOptions o;
  o.cache_capacity = capacity;
  return o;
}

QcrPolicy make_qcr(const utility::DelayUtility& u, double mu, double servers,
                   QcrPolicy::MandateRouting routing =
                       QcrPolicy::MandateRouting::kOn) {
  utility::ReactionFunction reaction(u, mu, servers);
  return QcrPolicy("QCR", [reaction](double y) { return reaction(y); },
                   routing);
}

TEST(Simulator, DeterministicForFixedSeed) {
  const auto trace = small_trace(1);
  const auto catalog = Catalog::pareto(10, 1.0, 0.5);
  StepUtility u(5.0);
  auto run = [&]() {
    auto policy = make_qcr(u, 0.08, 12);
    util::Rng rng(77);
    return simulate(trace, catalog, u, policy, basic_options(), rng);
  };
  const auto r1 = run();
  const auto r2 = run();
  EXPECT_DOUBLE_EQ(r1.total_gain, r2.total_gain);
  EXPECT_EQ(r1.fulfillments, r2.fulfillments);
  EXPECT_EQ(r1.final_counts, r2.final_counts);
}

TEST(Simulator, ReplicaTotalIsConservedAtCapacity) {
  // Caches start full (random fill) and random replacement keeps them
  // full: total replicas == rho * |S| throughout.
  const auto trace = small_trace(2);
  const auto catalog = Catalog::pareto(10, 1.0, 0.5);
  StepUtility u(5.0);
  auto policy = make_qcr(u, 0.08, 12);
  util::Rng rng(5);
  const auto result =
      simulate(trace, catalog, u, policy, basic_options(3), rng);
  const int total =
      std::accumulate(result.final_counts.begin(), result.final_counts.end(),
                      0);
  EXPECT_EQ(total, 3 * 12);
}

TEST(Simulator, StickyReplicasSurvive) {
  const auto trace = small_trace(3);
  const auto catalog = Catalog::pareto(10, 1.0, 0.5);
  StepUtility u(5.0);
  auto policy = make_qcr(u, 0.08, 12);
  util::Rng rng(6);
  const auto result =
      simulate(trace, catalog, u, policy, basic_options(), rng);
  // Every item has a sticky seed (10 items <= 12 servers): count >= 1.
  for (ItemId i = 0; i < 10; ++i) {
    EXPECT_GE(result.final_counts[i], 1) << "item " << i;
  }
}

TEST(Simulator, StaticPolicyKeepsCachesFrozen) {
  const auto trace = small_trace(4);
  const auto catalog = Catalog::pareto(6, 1.0, 0.5);
  StepUtility u(5.0);
  alloc::Placement placement(6, 12, 3);
  // Every item on two fixed servers.
  for (ItemId i = 0; i < 6; ++i) {
    placement.add(i, static_cast<NodeId>(i));
    placement.add(i, static_cast<NodeId>(i + 6));
  }
  SimOptions options = basic_options();
  options.sticky_replicas = false;
  options.initial_placement = placement;
  StaticPolicy policy;
  util::Rng rng(7);
  const auto result = simulate(trace, catalog, u, policy, options, rng);
  for (ItemId i = 0; i < 6; ++i) {
    EXPECT_EQ(result.final_counts[i], 2);
  }
}

TEST(Simulator, GainsMatchStepUtilitySemantics) {
  // With a step utility, every fulfilment within tau records gain 1, so
  // total_gain <= fulfilments + immediate hits; censored pending requests
  // past tau add zero.
  const auto trace = small_trace(5);
  const auto catalog = Catalog::pareto(8, 1.0, 0.5);
  StepUtility u(1000.0);  // effectively every fulfilment gains 1
  auto policy = make_qcr(u, 0.08, 12);
  util::Rng rng(8);
  const auto result =
      simulate(trace, catalog, u, policy, basic_options(), rng);
  EXPECT_GT(result.fulfillments, 0u);
  EXPECT_NEAR(result.total_gain,
              static_cast<double>(result.fulfillments +
                                  result.immediate_fulfillments +
                                  result.censored_requests),
              1e-9);
}

TEST(Simulator, RequestAccountingBalances) {
  const auto trace = small_trace(6);
  const auto catalog = Catalog::pareto(8, 1.0, 0.5);
  StepUtility u(5.0);
  auto policy = make_qcr(u, 0.08, 12);
  util::Rng rng(9);
  const auto result =
      simulate(trace, catalog, u, policy, basic_options(), rng);
  EXPECT_EQ(result.requests_created,
            result.fulfillments + result.immediate_fulfillments +
                result.censored_requests);
}

TEST(Simulator, MeanDelayPositiveAndBounded) {
  const auto trace = small_trace(7);
  const auto catalog = Catalog::pareto(8, 1.0, 0.5);
  StepUtility u(5.0);
  auto policy = make_qcr(u, 0.08, 12);
  util::Rng rng(10);
  const auto result =
      simulate(trace, catalog, u, policy, basic_options(), rng);
  EXPECT_GE(result.mean_delay, 1.0);  // at least one slot by construction
  EXPECT_LE(result.mean_delay, static_cast<double>(trace.duration()));
  EXPECT_GE(result.mean_query_count, 1.0);
}

TEST(Simulator, ExpectedWelfareProbeSampled) {
  const auto trace = small_trace(8);
  const auto catalog = Catalog::pareto(8, 1.0, 0.5);
  StepUtility u(5.0);
  auto policy = make_qcr(u, 0.08, 12);
  SimOptions options = basic_options();
  options.metrics.sample_every = 100;
  options.expected_welfare = [](std::span<const int> counts) {
    int total = 0;
    for (int c : counts) total += c;
    return static_cast<double>(total);
  };
  util::Rng rng(11);
  const auto result = simulate(trace, catalog, u, policy, options, rng);
  ASSERT_EQ(result.expected_series.size(), 8u);  // 800 slots / 100
  for (const auto& pt : result.expected_series) {
    EXPECT_DOUBLE_EQ(pt.value, 36.0);  // replica conservation, 3 * 12
  }
}

TEST(Simulator, IncrementalWelfareProbeTracksCachesEndToEnd) {
  // SimOptions::welfare_probe: the oracle is fed by the cache change
  // listeners and sampled via welfare_cached() at each metrics tick. It
  // is left tracking the final cache state, so welfare() — the
  // from-scratch evaluator on that same state — must agree with the
  // incremental value bitwise after thousands of listener deltas, on
  // both kernels.
  const auto make = [] {
    util::Rng gen(31);
    auto tr = trace::generate_poisson({12, 800, 0.08}, gen);
    return make_scenario(std::move(tr), Catalog::pareto(10, 1.0, 0.5), 3);
  };
  const Scenario scenario = make();
  const utility::UtilitySet utilities(StepUtility(5.0),
                                      scenario.catalog.num_items());
  for (SimKernel kernel : {SimKernel::slot_stepped, SimKernel::event_driven}) {
    WelfareProbe probe(scenario, utilities);
    SimOptions options;
    options.kernel = kernel;
    options.metrics.sample_every = 100;
    options.welfare_probe = probe.oracle();
    util::Rng rng(32);
    const auto result =
        run_qcr(scenario, utilities, QcrOptions{}, options, rng);
    ASSERT_EQ(result.expected_series.size(), 8u);
    for (const auto& pt : result.expected_series) {
      EXPECT_TRUE(std::isfinite(pt.value));
      EXPECT_GT(pt.value, 0.0);
    }
    EXPECT_DOUBLE_EQ(probe.oracle()->welfare_cached(),
                     probe.oracle()->welfare());
  }
}

TEST(Simulator, WelfareProbeMutuallyExclusiveWithExpectedWelfare) {
  const auto trace = small_trace(8);
  const auto catalog = Catalog::pareto(8, 1.0, 0.5);
  StepUtility u(5.0);
  StaticPolicy policy;
  const utility::UtilitySet utilities(u, catalog.num_items());
  util::Rng gen(33);
  auto tr = small_trace(8);
  const Scenario scenario =
      make_scenario(std::move(tr), Catalog::pareto(8, 1.0, 0.5), 3);
  WelfareProbe probe(scenario, utilities);
  SimOptions options = basic_options();
  options.metrics.sample_every = 100;
  options.welfare_probe = probe.oracle();
  options.expected_welfare = [](std::span<const int>) { return 0.0; };
  util::Rng rng(34);
  EXPECT_THROW(simulate(trace, catalog, u, policy, options, rng),
               std::invalid_argument);
}

TEST(Simulator, TrackedReplicaSeries) {
  const auto trace = small_trace(9);
  const auto catalog = Catalog::pareto(8, 1.0, 0.5);
  StepUtility u(5.0);
  auto policy = make_qcr(u, 0.08, 12);
  SimOptions options = basic_options();
  options.metrics.sample_every = 200;
  options.metrics.tracked_items = {0, 3};
  util::Rng rng(12);
  const auto result = simulate(trace, catalog, u, policy, options, rng);
  ASSERT_EQ(result.replica_series.size(), 2u);
  EXPECT_EQ(result.replica_series[0].size(), 4u);
  for (const auto& pt : result.replica_series[0]) {
    EXPECT_GE(pt.value, 1.0);  // sticky floor
    EXPECT_LE(pt.value, 12.0);
  }
}

TEST(Simulator, CensoringTogglesAccounting) {
  // A trace with zero contacts: every request is censored; with a cost
  // utility the censored total must be negative when enabled, zero when
  // disabled.
  trace::ContactTrace no_contacts(6, 300, {});
  const auto catalog = Catalog::pareto(6, 1.0, 0.5);
  PowerUtility u(0.0);  // h(t) = -t
  SimOptions with = basic_options();
  with.sticky_replicas = true;
  SimOptions without = with;
  without.censor_pending_at_end = false;

  StaticPolicy policy;
  util::Rng rng1(13), rng2(13);
  const auto censored =
      simulate(no_contacts, catalog, u, policy, with, rng1);
  const auto uncensored =
      simulate(no_contacts, catalog, u, policy, without, rng2);
  EXPECT_LT(censored.total_gain, 0.0);
  // Own-cache immediate hits gain h(0)=0; meeting fulfilments are
  // impossible; so the uncensored total is exactly 0.
  EXPECT_DOUBLE_EQ(uncensored.total_gain, 0.0);
  EXPECT_GT(uncensored.censored_requests, 0u);
}

// ---------------------------------------------------------------------
// Cache-init sampling (InitSampling). The rejection path is the seeded
// bit-locked default; the alias path replaces the rejection loop with
// one alias-table draw per slot. Same law, different stream use. The
// no-contact trace freezes the run at its initial fill (StaticPolicy,
// nothing can move), so final_counts IS the fill.

SimulationResult run_fill_only(std::uint64_t seed, InitSampling sampling) {
  trace::ContactTrace no_contacts(6, 2, {});
  const auto catalog = Catalog::pareto(6, 1.0, 0.5);
  StepUtility u(5.0);
  StaticPolicy policy;
  SimOptions options = basic_options();
  options.sticky_replicas = true;
  options.init_sampling = sampling;
  util::Rng rng(seed);
  return simulate(no_contacts, catalog, u, policy, options, rng);
}

TEST(Simulator, AliasInitFillsFullDistinctCaches) {
  const auto r = run_fill_only(3, InitSampling::alias);
  // 6 servers x capacity 3, all items distinct within a cache.
  EXPECT_EQ(std::accumulate(r.final_counts.begin(), r.final_counts.end(), 0),
            18);
  // Item i is sticky-seeded at server i: every item has >= 1 replica.
  for (int c : r.final_counts) EXPECT_GE(c, 1);
}

TEST(Simulator, RejectionInitIsTheSeededDefault) {
  // The enum default must stay `rejection` (the bit-locked reference):
  // an explicit rejection run reproduces the default-options run
  // exactly, and the same seed is reproducible.
  trace::ContactTrace no_contacts(6, 2, {});
  const auto catalog = Catalog::pareto(6, 1.0, 0.5);
  StepUtility u(5.0);
  StaticPolicy policy;
  SimOptions options = basic_options();
  options.sticky_replicas = true;
  util::Rng rng(9);
  const auto default_run = simulate(no_contacts, catalog, u, policy,
                                    options, rng);
  const auto explicit_run = run_fill_only(9, InitSampling::rejection);
  EXPECT_EQ(default_run.final_counts, explicit_run.final_counts);
  const auto again = run_fill_only(9, InitSampling::rejection);
  EXPECT_EQ(again.final_counts, explicit_run.final_counts);
}

TEST(Simulator, AliasInitMatchesRejectionInLaw) {
  // Both samplers fill the 2 non-sticky slots of each cache with
  // distinct uniform items; by symmetry every item's expected non-sticky
  // count per run is 2. Chi-square each sampler's aggregate against that
  // flat law (df = 5; 3.72-sigma Wilson-Hilferty critical ~ 27).
  constexpr int kRuns = 300;
  auto aggregate = [&](InitSampling sampling) {
    std::vector<double> totals(6, 0.0);
    for (int run = 0; run < kRuns; ++run) {
      const auto r = run_fill_only(1000 + run, sampling);
      for (std::size_t i = 0; i < totals.size(); ++i) {
        // Subtract the deterministic sticky seed (item i at server i).
        totals[i] += static_cast<double>(r.final_counts[i]) - 1.0;
      }
    }
    return totals;
  };
  auto chi_square = [](const std::vector<double>& totals) {
    const double expected = 2.0 * kRuns;
    double stat = 0.0;
    for (double t : totals) {
      stat += (t - expected) * (t - expected) / expected;
    }
    return stat;
  };
  EXPECT_LT(chi_square(aggregate(InitSampling::rejection)), 27.0);
  EXPECT_LT(chi_square(aggregate(InitSampling::alias)), 27.0);
}

TEST(Simulator, AliasInitWorksWithQcrAndKeepsConservation) {
  // End-to-end: alias-init QCR behaves like a normal run (replica total
  // conserved at capacity, requests balance).
  const auto trace = small_trace(21);
  const auto catalog = Catalog::pareto(10, 1.0, 0.5);
  StepUtility u(5.0);
  auto policy = make_qcr(u, 0.08, 12);
  SimOptions options = basic_options();
  options.init_sampling = InitSampling::alias;
  util::Rng rng(22);
  const auto r = simulate(trace, catalog, u, policy, options, rng);
  EXPECT_EQ(std::accumulate(r.final_counts.begin(), r.final_counts.end(), 0),
            3 * 12);
  EXPECT_EQ(r.requests_created, r.fulfillments + r.immediate_fulfillments +
                                    r.censored_requests);
}

TEST(Simulator, DedicatedPopulationSeparatesRoles) {
  const auto trace = small_trace(10, 12);
  const auto catalog = Catalog::pareto(6, 1.0, 0.5);
  StepUtility u(5.0);
  auto policy = make_qcr(u, 0.08, 6);
  SimOptions options = basic_options();
  util::Rng rng(14);
  const auto population = Population::dedicated(6, 6);
  const auto result =
      simulate(trace, catalog, u, policy, population, options, rng);
  // Clients have no caches: no immediate fulfilments possible.
  EXPECT_EQ(result.immediate_fulfillments, 0u);
  EXPECT_GT(result.fulfillments, 0u);
}

TEST(Simulator, UnboundedUtilityRejectedOnSelfHit) {
  // Pure P2P + inverse-power utility: the first own-cache hit must throw.
  const auto trace = small_trace(11);
  const auto catalog = Catalog::pareto(4, 1.0, 2.0);
  PowerUtility u(1.5);
  auto policy = make_qcr(u, 0.08, 12);
  SimOptions options = basic_options();
  util::Rng rng(15);
  EXPECT_THROW(simulate(trace, catalog, u, policy, options, rng),
               std::logic_error);
}

TEST(Simulator, Validation) {
  const auto trace = small_trace(12);
  const auto catalog = Catalog::pareto(4, 1.0, 0.5);
  StepUtility u(1.0);
  StaticPolicy policy;
  util::Rng rng(16);
  SimOptions bad = basic_options();
  bad.cache_capacity = 0;
  EXPECT_THROW(simulate(trace, catalog, u, policy, bad, rng),
               std::invalid_argument);

  Population empty;
  EXPECT_THROW(
      simulate(trace, catalog, u, policy, empty, basic_options(), rng),
      std::invalid_argument);

  Population out_of_range = Population::pure_p2p(12);
  out_of_range.servers.push_back(99);
  EXPECT_THROW(simulate(trace, catalog, u, policy, out_of_range,
                        basic_options(), rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace impatience::core
