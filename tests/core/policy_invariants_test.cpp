// Cross-policy invariant sweep: for every replication policy and several
// seeds, a full simulation must preserve the structural invariants of the
// protocol (replica conservation, capacity, sticky immortality, request
// accounting, mandate sanity).
#include <gtest/gtest.h>

#include <numeric>

#include "impatience/core/experiment.hpp"
#include "impatience/core/hill_climb_policy.hpp"
#include "impatience/utility/families.hpp"

namespace impatience::core {
namespace {

using utility::StepUtility;

struct Sweep {
  int policy_kind;  // 0 QCR, 1 QCR-noMR, 2 QCR-rewriting, 3 passive,
                    // 4 path, 5 static, 6 hill
  std::uint64_t seed;
};

class PolicyInvariantsTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

INSTANTIATE_TEST_SUITE_P(AllPoliciesAndSeeds, PolicyInvariantsTest,
                         ::testing::Combine(::testing::Range(0, 7),
                                            ::testing::Values(1, 2, 3)));

const char* policy_name(int kind) {
  switch (kind) {
    case 0: return "QCR";
    case 1: return "QCR-noMR";
    case 2: return "QCR-rewriting";
    case 3: return "PASSIVE";
    case 4: return "PATH";
    case 5: return "STATIC";
    case 6: return "HILL";
  }
  return "?";
}

TEST_P(PolicyInvariantsTest, StructuralInvariantsHold) {
  const auto [kind, seed_idx] = GetParam();
  const auto seed = static_cast<std::uint64_t>(seed_idx) * 7919;

  util::Rng rng(seed);
  const trace::NodeId n = 15;
  const core::ItemId items = 12;
  const int rho = 3;
  auto trace = trace::generate_poisson({n, 1000, 0.08}, rng);
  auto scenario =
      make_scenario(std::move(trace), Catalog::pareto(items, 1.0, 0.5), rho);
  StepUtility u(8.0);

  alloc::HomogeneousModel model{scenario.mu, n, n,
                                alloc::SystemMode::kPureP2P};
  utility::ReactionFunction reaction(u, scenario.mu,
                                     static_cast<double>(n), 0.1);
  auto reaction_fn = [reaction](double y) { return reaction(y); };

  std::unique_ptr<ReplicationPolicy> policy;
  switch (kind) {
    case 0:
      policy = std::make_unique<QcrPolicy>(
          "QCR", reaction_fn, QcrPolicy::MandateRouting::kOn);
      break;
    case 1:
      policy = std::make_unique<QcrPolicy>(
          "QCR-noMR", reaction_fn, QcrPolicy::MandateRouting::kOff);
      break;
    case 2:
      policy = std::make_unique<QcrPolicy>(
          "QCR-rw", reaction_fn, QcrPolicy::MandateRouting::kOn,
          QcrPolicy::kDefaultMandateCap, QcrPolicy::Rewriting::kAllowed);
      break;
    case 3: policy = make_passive_policy(0.5); break;
    case 4: policy = make_path_replication_policy(0.05); break;
    case 5: policy = std::make_unique<StaticPolicy>(); break;
    case 6:
      policy = std::make_unique<HillClimbPolicy>(
          scenario.catalog.demands(), u, model);
      break;
  }

  SimOptions options;
  options.cache_capacity = rho;
  // Hill climbing manages its own counts; sticky pins are compatible but
  // keep the default on except for STATIC-style runs.
  util::Rng run_rng(seed + 1);
  const auto result = simulate(scenario.trace, scenario.catalog, u, *policy,
                               options, run_rng);

  SCOPED_TRACE(policy_name(kind));

  // 1. Replica conservation: caches start full and stay full.
  const int total = std::accumulate(result.final_counts.begin(),
                                    result.final_counts.end(), 0);
  EXPECT_EQ(total, rho * static_cast<int>(n));

  // 2. Per-item counts within [sticky floor, |S|].
  for (core::ItemId i = 0; i < items; ++i) {
    EXPECT_GE(result.final_counts[i], 1) << "item " << i;  // sticky seeds
    EXPECT_LE(result.final_counts[i], static_cast<int>(n));
  }

  // 3. Request accounting balances.
  EXPECT_EQ(result.requests_created,
            result.fulfillments + result.immediate_fulfillments +
                result.censored_requests);

  // 4. Mandates: created >= executed, outstanding non-negative and
  //    conserved (created = written + rewritten + outstanding) for QCR
  //    family policies.
  if (auto* qcr = dynamic_cast<QcrPolicy*>(policy.get())) {
    EXPECT_GE(qcr->mandates_created(), qcr->replicas_written());
    EXPECT_EQ(qcr->mandates_created(),
              qcr->replicas_written() + qcr->mandates_rewritten() +
                  result.outstanding_mandates);
  } else {
    EXPECT_EQ(result.mandates_created, 0);
  }

  // 5. Gains bounded by the step utility's range.
  EXPECT_LE(result.total_gain,
            static_cast<double>(result.requests_created) + 1e-9);
  EXPECT_GE(result.total_gain, 0.0);

  // 6. Delay and counter sanity.
  if (result.fulfillments > 0) {
    EXPECT_GE(result.mean_delay, 1.0);
    EXPECT_GE(result.mean_query_count, 1.0);
  }
}

TEST_P(PolicyInvariantsTest, DeterministicAcrossReruns) {
  const auto [kind, seed_idx] = GetParam();
  const auto seed = static_cast<std::uint64_t>(seed_idx) * 104729;
  auto run_once = [&]() {
    util::Rng rng(seed);
    auto trace = trace::generate_poisson({10, 400, 0.1}, rng);
    auto scenario =
        make_scenario(std::move(trace), Catalog::pareto(8, 1.0, 0.5), 2);
    StepUtility u(5.0);
    alloc::HomogeneousModel model{scenario.mu, 10, 10,
                                  alloc::SystemMode::kPureP2P};
    utility::ReactionFunction reaction(u, scenario.mu, 10.0, 0.1);
    auto reaction_fn = [reaction](double y) { return reaction(y); };
    std::unique_ptr<ReplicationPolicy> policy;
    switch (kind) {
      case 0:
        policy = std::make_unique<QcrPolicy>(
            "QCR", reaction_fn, QcrPolicy::MandateRouting::kOn);
        break;
      case 1:
        policy = std::make_unique<QcrPolicy>(
            "QCR-noMR", reaction_fn, QcrPolicy::MandateRouting::kOff);
        break;
      case 2:
        policy = std::make_unique<QcrPolicy>(
            "QCR-rw", reaction_fn, QcrPolicy::MandateRouting::kOn,
            QcrPolicy::kDefaultMandateCap, QcrPolicy::Rewriting::kAllowed);
        break;
      case 3: policy = make_passive_policy(0.5); break;
      case 4: policy = make_path_replication_policy(0.05); break;
      case 5: policy = std::make_unique<StaticPolicy>(); break;
      case 6:
        policy = std::make_unique<HillClimbPolicy>(
            scenario.catalog.demands(), u, model);
        break;
    }
    SimOptions options;
    options.cache_capacity = 2;
    util::Rng run_rng(seed + 1);
    return simulate(scenario.trace, scenario.catalog, u, *policy, options,
                    run_rng);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_DOUBLE_EQ(a.total_gain, b.total_gain);
  EXPECT_EQ(a.final_counts, b.final_counts);
  EXPECT_EQ(a.fulfillments, b.fulfillments);
}

}  // namespace
}  // namespace impatience::core
