// Bit-identity of the parallel meeting path: for any thread count,
// core::simulate with meeting_parallelism N must produce the exact
// SimulationResult of the sequential fused walk (meeting_parallelism 0)
// — same RNG draws, same floating-point sums, same pending compaction —
// across both kernels and fault-active runs. Plus property tests of the
// conflict-scheduling WavePartitioner the parallel path relies on, and a
// dense-slot stress that doubles as the ThreadSanitizer target
// (scripts/check_engine_tsan.sh). Runs under `ctest -L sim`.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "impatience/core/experiment.hpp"
#include "impatience/engine/seeding.hpp"
#include "impatience/trace/generators.hpp"
#include "impatience/trace/partition.hpp"
#include "impatience/util/rng.hpp"
#include "impatience/utility/families.hpp"

namespace impatience::core {
namespace {

/// Exact equality of every result field — doubles with EXPECT_DOUBLE_EQ
/// (bitwise for finite values), vectors element for element. Any
/// divergence is a determinism regression in the plan/commit split, not
/// a tolerance issue.
void expect_bit_identical(const SimulationResult& ref,
                          const SimulationResult& got, const char* what) {
  SCOPED_TRACE(what);
  EXPECT_DOUBLE_EQ(got.total_gain, ref.total_gain);
  EXPECT_EQ(got.requests_created, ref.requests_created);
  EXPECT_EQ(got.fulfillments, ref.fulfillments);
  EXPECT_EQ(got.immediate_fulfillments, ref.immediate_fulfillments);
  EXPECT_EQ(got.censored_requests, ref.censored_requests);
  EXPECT_DOUBLE_EQ(got.mean_delay, ref.mean_delay);
  EXPECT_DOUBLE_EQ(got.mean_query_count, ref.mean_query_count);
  EXPECT_EQ(got.final_counts, ref.final_counts);
  EXPECT_EQ(got.outstanding_mandates, ref.outstanding_mandates);
  EXPECT_EQ(got.mandates_created, ref.mandates_created);
  EXPECT_EQ(got.replicas_written, ref.replicas_written);
  EXPECT_EQ(got.faults.meetings_dropped, ref.faults.meetings_dropped);
  EXPECT_EQ(got.faults.exchanges_truncated, ref.faults.exchanges_truncated);
  EXPECT_EQ(got.faults.fulfilments_deferred,
            ref.faults.fulfilments_deferred);
  EXPECT_EQ(got.faults.crashes, ref.faults.crashes);
  ASSERT_EQ(got.observed_series.size(), ref.observed_series.size());
  for (std::size_t i = 0; i < ref.observed_series.size(); ++i) {
    EXPECT_DOUBLE_EQ(got.observed_series[i].value,
                     ref.observed_series[i].value);
  }
}

constexpr int kThreadCounts[] = {1, 2, 8};

/// Runs `trial` with meeting_parallelism 0 (the bit-locked sequential
/// reference) and each parallel thread count, for both kernels, and
/// asserts exact equality throughout.
template <typename Trial>
void expect_parallel_bit_identical(Trial&& trial) {
  const SimKernel kernels[2] = {SimKernel::slot_stepped,
                                SimKernel::event_driven};
  for (SimKernel kernel : kernels) {
    const SimulationResult ref = trial(kernel, 0);
    for (int threads : kThreadCounts) {
      const SimulationResult got = trial(kernel, threads);
      const std::string what =
          std::string(kernel == SimKernel::slot_stepped ? "slot" : "event") +
          " threads=" + std::to_string(threads);
      expect_bit_identical(ref, got, what.c_str());
    }
  }
}

// ---------------------------------------------------------------------
// Simulation bit-identity across thread counts.

TEST(MeetingParallel, InfocomFixedPlacementBitIdentical) {
  util::Rng gen(71);
  trace::InfocomLikeParams params;
  params.num_nodes = 24;
  params.days = 1;
  auto tr = trace::generate_infocom_like(params, gen);
  auto scenario =
      make_scenario(std::move(tr), Catalog::pareto(25, 1.0, 2.0), 4);
  utility::StepUtility u(30.0);
  util::Rng prng(72);
  const auto competitors =
      build_competitors(scenario, u, OptMode::kHomogeneous, prng);
  const auto& uni = competitors[1];
  expect_parallel_bit_identical([&](SimKernel kernel, int threads) {
    SimOptions options;
    options.kernel = kernel;
    options.meeting_parallelism = threads;
    util::Rng rng(4242);
    return run_fixed(scenario, u, uni.name, uni.placement, options, rng);
  });
}

TEST(MeetingParallel, PoissonQcrBitIdentical) {
  // QCR is the RNG-heavy policy: on_meeting_complete draws on every
  // meeting, so any out-of-order commit shifts every later draw.
  util::Rng gen(81);
  auto tr = trace::generate_poisson({24, 1200, 0.06}, gen);
  auto scenario =
      make_scenario(std::move(tr), Catalog::pareto(20, 1.0, 2.0), 4);
  utility::StepUtility u(15.0);
  expect_parallel_bit_identical([&](SimKernel kernel, int threads) {
    SimOptions options;
    options.kernel = kernel;
    options.meeting_parallelism = threads;
    util::Rng rng(9001);
    return run_qcr(scenario, u, QcrOptions{}, options, rng);
  });
}

TEST(MeetingParallel, FaultCocktailQcrBitIdentical) {
  // Full fault cocktail: drops, truncation (budgeted commits), dups,
  // reordering and crashes. The parallel path shares the staging pass
  // with the sequential walk and must consume the fault streams — and
  // the simulation RNG — draw for draw.
  util::Rng gen(91);
  auto tr = trace::generate_poisson({20, 1200, 0.05}, gen);
  auto scenario =
      make_scenario(std::move(tr), Catalog::pareto(20, 1.0, 2.0), 4);
  utility::StepUtility u(20.0);
  expect_parallel_bit_identical([&](SimKernel kernel, int threads) {
    SimOptions options;
    options.kernel = kernel;
    options.meeting_parallelism = threads;
    options.faults.p_drop = 0.05;
    options.faults.p_truncate = 0.15;
    options.faults.p_duplicate = 0.03;
    options.faults.p_reorder = 0.1;
    options.faults.p_crash = 0.001;
    options.faults.mean_downtime = 20.0;
    options.faults.seed = 3131;
    util::Rng rng(515);
    const auto r = run_qcr(scenario, u, QcrOptions{}, options, rng);
    if (threads == 0) {
      EXPECT_GT(r.faults.injected_events(), 0u);
      EXPECT_GT(r.faults.exchanges_truncated, 0u);
    }
    return r;
  });
}

TEST(MeetingParallel, SparseCabspottingExponentialBitIdentical) {
  // Sparse vehicular trace: mostly singleton waves, exercising the
  // inline-planning path (batches below the fan-out threshold).
  util::Rng gen(61);
  trace::CabspottingLikeParams params;
  params.mobility.num_nodes = 20;
  params.duration = 1200;
  auto tr = trace::generate_cabspotting_like(params, gen);
  auto scenario =
      make_scenario(std::move(tr), Catalog::pareto(25, 1.0, 2.0), 4);
  utility::ExponentialUtility u(0.05);
  util::Rng prng(62);
  const auto competitors =
      build_competitors(scenario, u, OptMode::kHomogeneous, prng);
  const auto& uni = competitors[1];
  expect_parallel_bit_identical([&](SimKernel kernel, int threads) {
    SimOptions options;
    options.kernel = kernel;
    options.meeting_parallelism = threads;
    util::Rng rng(303);
    return run_fixed(scenario, u, uni.name, uni.placement, options, rng);
  });
}

TEST(MeetingParallel, AutoParallelismMatchesSequential) {
  // meeting_parallelism = -1 resolves against the machine's core count;
  // whatever it resolves to must still be bit-identical.
  util::Rng gen(51);
  auto tr = trace::generate_poisson({20, 800, 0.05}, gen);
  auto scenario =
      make_scenario(std::move(tr), Catalog::pareto(20, 1.0, 2.0), 4);
  utility::StepUtility u(15.0);
  auto run = [&](int threads) {
    SimOptions options;
    options.meeting_parallelism = threads;
    util::Rng rng(707);
    return run_qcr(scenario, u, QcrOptions{}, options, rng);
  };
  expect_bit_identical(run(0), run(-1), "auto");
}

// ---------------------------------------------------------------------
// Dense-slot stress: a large conference-style slot load with QCR and
// maximum fan-out. Primarily a ThreadSanitizer target — plan waves race
// only if the conflict partition or the plan/commit barrier is wrong —
// but the bit-identity check keeps it honest in plain builds too.

TEST(MeetingParallel, DenseSlotStress) {
  util::Rng gen(41);
  trace::InfocomLikeParams params;
  params.num_nodes = 60;
  params.days = 1;
  auto tr = trace::generate_infocom_like(params, gen);
  auto scenario =
      make_scenario(std::move(tr), Catalog::pareto(40, 1.0, 8.0), 4);
  utility::StepUtility u(60.0);
  auto run = [&](int threads) {
    SimOptions options;
    options.meeting_parallelism = threads;
    util::Rng rng(1117);
    return run_qcr(scenario, u, QcrOptions{}, options, rng);
  };
  expect_bit_identical(run(0), run(8), "dense threads=8");
}

// ---------------------------------------------------------------------
// WavePartitioner properties. The schedule contract (partition.hpp):
// `order` is a wave-grouped permutation of the batch, each wave is node-
// disjoint, commit runs are non-empty trace-order ranges covering the
// batch, every meeting's earlier conflicts commit before its wave is
// planned, and every meeting commits no earlier than its wave.

std::vector<trace::ContactEvent> random_batch(util::Rng& rng,
                                              trace::NodeId num_nodes,
                                              std::size_t size) {
  std::vector<trace::ContactEvent> events;
  events.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    const auto a = static_cast<trace::NodeId>(
        rng.uniform_int(0, static_cast<std::int64_t>(num_nodes) - 1));
    auto b = static_cast<trace::NodeId>(
        rng.uniform_int(0, static_cast<std::int64_t>(num_nodes) - 1));
    if (b == a) b = static_cast<trace::NodeId>((b + 1) % num_nodes);
    events.push_back({0, a, b});
  }
  return events;
}

bool conflicts(const trace::ContactEvent& x, const trace::ContactEvent& y) {
  return x.a == y.a || x.a == y.b || x.b == y.a || x.b == y.b;
}

void check_schedule(const std::vector<trace::ContactEvent>& events,
                    const std::vector<std::uint32_t>& order,
                    const std::vector<std::size_t>& wave_ends,
                    const std::vector<std::size_t>& commit_ends,
                    trace::NodeId num_nodes) {
  const std::size_t n = events.size();
  if (n == 0) {
    EXPECT_TRUE(order.empty());
    EXPECT_TRUE(wave_ends.empty());
    EXPECT_TRUE(commit_ends.empty());
    return;
  }
  // One commit run per wave; runs are non-empty, increasing, and end at
  // the batch size.
  ASSERT_EQ(wave_ends.size(), commit_ends.size());
  ASSERT_FALSE(wave_ends.empty());
  ASSERT_EQ(order.size(), n);
  std::size_t prev = 0;
  for (std::size_t end : commit_ends) {
    ASSERT_GT(end, prev);
    ASSERT_LE(end, n);
    prev = end;
  }
  ASSERT_EQ(commit_ends.back(), n);
  ASSERT_EQ(wave_ends.back(), n);

  // order is a permutation; reconstruct each meeting's wave.
  std::vector<std::size_t> wave_of(n, SIZE_MAX);
  std::size_t begin = 0;
  for (std::size_t w = 0; w < wave_ends.size(); ++w) {
    ASSERT_GE(wave_ends[w], begin);
    for (std::size_t k = begin; k < wave_ends[w]; ++k) {
      ASSERT_LT(order[k], n);
      EXPECT_EQ(wave_of[order[k]], SIZE_MAX)
          << "meeting " << order[k] << " scheduled twice";
      wave_of[order[k]] = w;
    }
    begin = wave_ends[w];
  }
  // run_of: the commit run each trace index falls into.
  std::vector<std::size_t> run_of(n);
  for (std::size_t i = 0, run = 0; i < n; ++i) {
    while (i >= commit_ends[run]) ++run;
    run_of[i] = run;
  }
  // Node-disjointness within each wave.
  std::vector<std::size_t> seen(static_cast<std::size_t>(num_nodes),
                                SIZE_MAX);
  begin = 0;
  for (std::size_t w = 0; w < wave_ends.size(); ++w) {
    for (std::size_t k = begin; k < wave_ends[w]; ++k) {
      const trace::ContactEvent& e = events[order[k]];
      EXPECT_NE(seen[e.a], w) << "node " << e.a << " twice in wave " << w;
      EXPECT_NE(seen[e.b], w) << "node " << e.b << " twice in wave " << w;
      seen[e.a] = w;
      seen[e.b] = w;
    }
    begin = wave_ends[w];
  }
  for (std::size_t i = 0; i < n; ++i) {
    // A meeting may only commit once its wave has been planned.
    EXPECT_GE(run_of[i], wave_of[i]) << "meeting " << i;
    // Plan safety + tightness: every earlier conflicting meeting commits
    // in a run before this meeting's wave, and the wave is exactly one
    // past the latest such run (wave 0 iff no earlier conflict).
    std::size_t latest_run = 0;
    bool has_conflict = false;
    for (std::size_t j = 0; j < i; ++j) {
      if (conflicts(events[j], events[i])) {
        has_conflict = true;
        EXPECT_LT(run_of[j], wave_of[i])
            << "meeting " << i << " planned before conflict " << j
            << " committed";
        latest_run = std::max(latest_run, run_of[j]);
      }
    }
    EXPECT_EQ(wave_of[i], has_conflict ? latest_run + 1 : 0)
        << "meeting " << i << " not scheduled greedily";
  }
}

void schedule_and_check(trace::WavePartitioner& partitioner,
                        const std::vector<trace::ContactEvent>& events,
                        trace::NodeId num_nodes) {
  std::vector<std::uint32_t> order;
  std::vector<std::size_t> wave_ends;
  std::vector<std::size_t> commit_ends;
  partitioner.schedule(events, order, wave_ends, commit_ends);
  check_schedule(events, order, wave_ends, commit_ends, num_nodes);
}

TEST(WavePartitioner, RandomBatchesSatisfyContract) {
  constexpr trace::NodeId kNodes = 16;
  trace::WavePartitioner partitioner(kNodes);
  util::Rng rng(2718);
  for (int round = 0; round < 200; ++round) {
    const auto size = static_cast<std::size_t>(rng.uniform_int(0, 40));
    schedule_and_check(partitioner, random_batch(rng, kNodes, size),
                       kNodes);
  }
}

TEST(WavePartitioner, DisjointBatchIsOneWave) {
  trace::WavePartitioner partitioner(8);
  std::vector<std::uint32_t> order;
  std::vector<std::size_t> wave_ends;
  std::vector<std::size_t> commit_ends;
  const std::vector<trace::ContactEvent> events{
      {0, 0, 1}, {0, 2, 3}, {0, 4, 5}, {0, 6, 7}};
  partitioner.schedule(events, order, wave_ends, commit_ends);
  ASSERT_EQ(wave_ends.size(), 1u);
  EXPECT_EQ(wave_ends[0], 4u);
  ASSERT_EQ(commit_ends.size(), 1u);
  EXPECT_EQ(commit_ends[0], 4u);
}

TEST(WavePartitioner, RepeatedPairIsOneWavePerMeeting) {
  trace::WavePartitioner partitioner(4);
  std::vector<std::uint32_t> order;
  std::vector<std::size_t> wave_ends;
  std::vector<std::size_t> commit_ends;
  const std::vector<trace::ContactEvent> events{
      {0, 0, 1}, {0, 0, 1}, {0, 1, 0}};
  partitioner.schedule(events, order, wave_ends, commit_ends);
  ASSERT_EQ(wave_ends.size(), 3u);
  EXPECT_EQ(order, (std::vector<std::uint32_t>{0, 1, 2}));
  EXPECT_EQ(commit_ends, (std::vector<std::size_t>{1, 2, 3}));
}

TEST(WavePartitioner, AntichainReachesPastTheCommitCursor) {
  // Node-sorted slot, the shape ContactTrace produces: (0,1) (0,2) then
  // two independent meetings. A contiguous-prefix cut would end the
  // first wave at (0,2); the antichain schedule reaches past it and
  // plans (4,5) and (6,7) in wave 0 too.
  trace::WavePartitioner partitioner(8);
  std::vector<std::uint32_t> order;
  std::vector<std::size_t> wave_ends;
  std::vector<std::size_t> commit_ends;
  const std::vector<trace::ContactEvent> events{
      {0, 0, 1}, {0, 0, 2}, {0, 4, 5}, {0, 6, 7}};
  partitioner.schedule(events, order, wave_ends, commit_ends);
  ASSERT_EQ(wave_ends.size(), 2u);
  // Wave 0 = {0, 2, 3}: everything but the dependent (0,2).
  EXPECT_EQ(wave_ends[0], 3u);
  EXPECT_EQ(order, (std::vector<std::uint32_t>{0, 2, 3, 1}));
  // Run 0 commits only meeting 0 (stalls at the unplanned (0,2)); run 1
  // commits the rest.
  EXPECT_EQ(commit_ends, (std::vector<std::size_t>{1, 4}));
  check_schedule(events, order, wave_ends, commit_ends, 8);
}

TEST(WavePartitioner, PlanWaitsForCommitNotJustPlan) {
  // (3,5) conflicts only with (3,4), which is *planned* in wave 0 but
  // cannot *commit* until run 1 (the cursor stalls at (0,2)). (3,5)
  // must therefore wait for wave 2 — planning it in wave 1 would read
  // (3,4)'s pre-commit state.
  trace::WavePartitioner partitioner(8);
  std::vector<std::uint32_t> order;
  std::vector<std::size_t> wave_ends;
  std::vector<std::size_t> commit_ends;
  const std::vector<trace::ContactEvent> events{
      {0, 0, 1}, {0, 0, 2}, {0, 3, 4}, {0, 3, 5}};
  partitioner.schedule(events, order, wave_ends, commit_ends);
  ASSERT_EQ(wave_ends.size(), 3u);
  EXPECT_EQ(order, (std::vector<std::uint32_t>{0, 2, 1, 3}));
  EXPECT_EQ(commit_ends, (std::vector<std::size_t>{1, 3, 4}));
  check_schedule(events, order, wave_ends, commit_ends, 8);
}

TEST(WavePartitioner, EmptyBatchYieldsNoWaves) {
  trace::WavePartitioner partitioner(4);
  std::vector<std::uint32_t> order{7};       // must all be cleared
  std::vector<std::size_t> wave_ends{99};
  std::vector<std::size_t> commit_ends{99};
  partitioner.schedule({}, order, wave_ends, commit_ends);
  EXPECT_TRUE(order.empty());
  EXPECT_TRUE(wave_ends.empty());
  EXPECT_TRUE(commit_ends.empty());
}

TEST(WavePartitioner, ReusableAcrossManyBatches) {
  // The epoch-stamp scratch must not leak state between batches, even
  // across thousands of calls.
  constexpr trace::NodeId kNodes = 6;
  trace::WavePartitioner partitioner(kNodes);
  util::Rng rng(31415);
  for (int round = 0; round < 2000; ++round) {
    schedule_and_check(partitioner, random_batch(rng, kNodes, 8), kNodes);
  }
}

}  // namespace
}  // namespace impatience::core
