#include "impatience/core/mandate.hpp"

#include <gtest/gtest.h>

#include "impatience/core/node.hpp"

namespace impatience::core {
namespace {

TEST(MandateBag, AddTakeCount) {
  MandateBag bag(4);
  EXPECT_TRUE(bag.empty());
  bag.add(2, 5);
  EXPECT_EQ(bag.count(2), 5);
  EXPECT_EQ(bag.total(), 5);
  EXPECT_EQ(bag.take(2, 3), 3);
  EXPECT_EQ(bag.count(2), 2);
  EXPECT_EQ(bag.total(), 2);
}

TEST(MandateBag, TakeMoreThanAvailable) {
  MandateBag bag(2);
  bag.add(0, 2);
  EXPECT_EQ(bag.take(0, 10), 2);
  EXPECT_EQ(bag.count(0), 0);
  EXPECT_TRUE(bag.empty());
}

TEST(MandateBag, TakeFromEmptyItem) {
  MandateBag bag(2);
  EXPECT_EQ(bag.take(1, 5), 0);
}

TEST(MandateBag, AddZeroIsNoop) {
  MandateBag bag(2);
  bag.add(0, 0);
  EXPECT_TRUE(bag.empty());
}

TEST(MandateBag, ActiveItems) {
  MandateBag bag(5);
  bag.add(1, 1);
  bag.add(4, 2);
  const auto items = bag.active_items();
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0], 1u);
  EXPECT_EQ(items[1], 4u);
}

TEST(MandateBag, Validation) {
  EXPECT_THROW(MandateBag(0), std::invalid_argument);
  MandateBag bag(2);
  EXPECT_THROW(bag.add(2, 1), std::out_of_range);
  EXPECT_THROW(bag.take(2, 1), std::out_of_range);
  EXPECT_THROW(bag.count(2), std::out_of_range);
  EXPECT_THROW(bag.add(0, -1), std::invalid_argument);
  EXPECT_THROW(bag.take(0, -1), std::invalid_argument);
}

TEST(Node, RolesAndAccess) {
  Node server(0, 3, 5, true, false);
  EXPECT_TRUE(server.is_server());
  EXPECT_FALSE(server.is_client());
  EXPECT_NO_THROW(server.cache());
  EXPECT_THROW(server.create_request(0, 1), std::logic_error);

  Node client(1, 3, 5, false, true);
  EXPECT_FALSE(client.is_server());
  EXPECT_THROW(client.cache(), std::logic_error);
  client.create_request(2, 7);
  ASSERT_EQ(client.pending().size(), 1u);
  EXPECT_EQ(client.pending()[0].item, 2u);
  EXPECT_EQ(client.pending()[0].created, 7);
  // Fresh request: its live query counter (clock minus snapshot) is zero.
  EXPECT_EQ(client.server_meetings() - client.pending()[0].queries_at_creation,
            0);
}

TEST(Node, HoldsChecksCache) {
  Node n(0, 3, 2, true, true);
  util::Rng rng(1);
  EXPECT_FALSE(n.holds(1));
  n.cache().insert_random_replace(1, rng);
  EXPECT_TRUE(n.holds(1));
  Node client(1, 3, 2, false, true);
  EXPECT_FALSE(client.holds(1));
}

TEST(Node, RelayNodeCarriesMandates) {
  Node relay(0, 3, 2, false, false);
  relay.mandates().add(1, 2);
  EXPECT_EQ(relay.mandates().total(), 2);
}

}  // namespace
}  // namespace impatience::core
