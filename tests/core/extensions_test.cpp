// Rewriting mode (Section 5.1) and dynamic demand (Section 7).
#include <gtest/gtest.h>

#include "impatience/core/experiment.hpp"
#include "impatience/utility/families.hpp"

namespace impatience::core {
namespace {

using utility::StepUtility;

Node make_server(NodeId id, std::initializer_list<ItemId> items) {
  Node n(id, 10, 5, true, true);
  util::Rng rng(id + 100);
  for (ItemId i : items) n.cache().insert_random_replace(i, rng);
  return n;
}

TEST(Rewriting, ConsumesMandateWithoutCopy) {
  QcrPolicy policy("QCR", [](double) { return 1.0; },
                   QcrPolicy::MandateRouting::kOn,
                   QcrPolicy::kDefaultMandateCap,
                   QcrPolicy::Rewriting::kAllowed);
  Node a = make_server(0, {3});
  Node b = make_server(1, {3});
  a.mandates().add(3, 2);
  util::Rng rng(1);
  policy.on_meeting_complete(a, b, rng);
  EXPECT_EQ(policy.replicas_written(), 0);
  EXPECT_EQ(policy.mandates_rewritten(), 1);
  EXPECT_EQ(a.mandates().count(3) + b.mandates().count(3), 1);
}

TEST(Rewriting, DisallowedRetainsMandates) {
  QcrPolicy policy("QCR", [](double) { return 1.0; },
                   QcrPolicy::MandateRouting::kOn);
  Node a = make_server(0, {3});
  Node b = make_server(1, {3});
  a.mandates().add(3, 2);
  util::Rng rng(2);
  policy.on_meeting_complete(a, b, rng);
  EXPECT_EQ(policy.mandates_rewritten(), 0);
  EXPECT_EQ(a.mandates().count(3) + b.mandates().count(3), 2);
}

TEST(Rewriting, QcrStillConvergesWithRewriting) {
  util::Rng rng(3);
  auto trace = trace::generate_poisson({20, 1500, 0.06}, rng);
  auto s = make_scenario(std::move(trace), Catalog::pareto(15, 1.0, 0.5), 3);
  StepUtility u(10.0);
  QcrOptions opts;
  opts.rewriting = true;
  util::Rng r(4);
  const auto result = run_qcr(s, u, opts, SimOptions{}, r);
  EXPECT_GT(result.fulfillments, 0u);
  // Rewriting drains some mandates without copies.
  EXPECT_GT(result.mandates_created, result.replicas_written);
}

TEST(DynamicDemand, ScheduleValidation) {
  util::Rng rng(5);
  auto trace = trace::generate_poisson({8, 200, 0.1}, rng);
  const auto catalog = Catalog::pareto(4, 1.0, 0.5);
  StepUtility u(5.0);
  StaticPolicy policy;

  SimOptions wrong_items;
  wrong_items.cache_capacity = 2;
  wrong_items.demand_schedule.emplace_back(100, Catalog::pareto(5, 1.0, 0.5));
  util::Rng r1(6);
  EXPECT_THROW(simulate(trace, catalog, u, policy, wrong_items, r1),
               std::invalid_argument);

  SimOptions unsorted;
  unsorted.cache_capacity = 2;
  unsorted.demand_schedule.emplace_back(100, Catalog::pareto(4, 1.0, 0.5));
  unsorted.demand_schedule.emplace_back(50, Catalog::pareto(4, 1.0, 0.5));
  util::Rng r2(7);
  EXPECT_THROW(simulate(trace, catalog, u, policy, unsorted, r2),
               std::invalid_argument);
}

TEST(DynamicDemand, RequestsFollowTheActiveCatalog) {
  // Demand concentrated on item 0 for the first half, then on item 3.
  util::Rng rng(8);
  trace::ContactTrace no_contacts(6, 1000, {});
  std::vector<double> first{1.0, 1e-9, 1e-9, 1e-9};
  std::vector<double> second{1e-9, 1e-9, 1e-9, 1.0};
  SimOptions options;
  options.cache_capacity = 2;
  options.sticky_replicas = false;
  options.censor_pending_at_end = false;
  options.demand_schedule.emplace_back(500, Catalog(second));
  StaticPolicy policy;
  StepUtility u(5.0);
  util::Rng r(9);
  const auto result =
      simulate(no_contacts, Catalog(first), u, policy, options, r);
  // No caches are filled (sticky off, no placement): every request stays
  // pending. We can only check volume here; the per-item switch is
  // verified through QCR adaptation below.
  EXPECT_GT(result.requests_created, 0u);
}

TEST(DynamicDemand, QcrAdaptsToPopularityShift) {
  // Pareto demand, then the popularity ranking is reversed mid-run: the
  // previously least-popular item must gain replicas (Section 7: "QCR
  // naturally adapts to a dynamic demand").
  util::Rng rng(10);
  auto trace = trace::generate_poisson({20, 4000, 0.06}, rng);
  auto catalog = Catalog::pareto(20, 1.0, 0.5);
  std::vector<double> reversed(catalog.demands().rbegin(),
                               catalog.demands().rend());
  auto s = make_scenario(std::move(trace), catalog, 3);
  StepUtility u(10.0);

  SimOptions options;
  options.demand_schedule.emplace_back(2000, Catalog(reversed));
  options.metrics.sample_every = 250;
  options.metrics.tracked_items = {0, 19};
  util::Rng r(11);
  const auto result = run_qcr(s, u, QcrOptions{}, options, r);

  // Item 19 (unpopular, then most popular) must end with more replicas
  // than item 0 (the reverse).
  EXPECT_GT(result.final_counts[19], result.final_counts[0]);
  // And its replica count must have grown after the shift.
  const auto& series19 = result.replica_series[1];
  double before = 0.0, after = 0.0;
  int nb = 0, na = 0;
  for (const auto& pt : series19) {
    if (pt.time < 2000) {
      before += pt.value;
      ++nb;
    } else if (pt.time > 2500) {  // allow adaptation time
      after += pt.value;
      ++na;
    }
  }
  ASSERT_GT(nb, 0);
  ASSERT_GT(na, 0);
  EXPECT_GT(after / na, before / nb);
}

}  // namespace
}  // namespace impatience::core
