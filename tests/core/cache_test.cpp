#include "impatience/core/cache.hpp"

#include <gtest/gtest.h>

namespace impatience::core {
namespace {

TEST(Cache, InsertUntilFull) {
  Cache c(3);
  util::Rng rng(1);
  EXPECT_FALSE(c.full());
  EXPECT_EQ(c.insert_random_replace(1, rng), std::nullopt);
  EXPECT_EQ(c.insert_random_replace(2, rng), std::nullopt);
  EXPECT_EQ(c.insert_random_replace(3, rng), std::nullopt);
  EXPECT_TRUE(c.full());
  EXPECT_TRUE(c.contains(2));
  EXPECT_FALSE(c.contains(9));
}

TEST(Cache, RandomReplacementEvicts) {
  Cache c(2);
  util::Rng rng(2);
  c.insert_random_replace(1, rng);
  c.insert_random_replace(2, rng);
  const auto evicted = c.insert_random_replace(3, rng);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_TRUE(*evicted == 1 || *evicted == 2);
  EXPECT_TRUE(c.contains(3));
  EXPECT_EQ(c.size(), 2);
}

TEST(Cache, EvictionIsUniformOverNonSticky) {
  // With capacity 3 and sticky item 0, items 1 and 2 must each be the
  // victim about half the time.
  int evicted1 = 0, evicted2 = 0;
  util::Rng rng(3);
  for (int trial = 0; trial < 4000; ++trial) {
    Cache c(3);
    c.pin_sticky(0);
    c.insert_random_replace(1, rng);
    c.insert_random_replace(2, rng);
    const auto victim = c.insert_random_replace(3, rng);
    ASSERT_TRUE(victim.has_value());
    ASSERT_NE(*victim, 0u);
    (*victim == 1 ? evicted1 : evicted2)++;
  }
  EXPECT_NEAR(evicted1 / 4000.0, 0.5, 0.05);
  EXPECT_NEAR(evicted2 / 4000.0, 0.5, 0.05);
}

TEST(Cache, StickyNeverEvicted) {
  Cache c(2);
  util::Rng rng(4);
  c.pin_sticky(7);
  c.insert_random_replace(1, rng);
  for (ItemId i = 10; i < 100; ++i) {
    c.insert_random_replace(i, rng);
    EXPECT_TRUE(c.contains(7));
  }
}

TEST(Cache, PinStickyInsertsIfAbsent) {
  Cache c(2);
  c.pin_sticky(5);
  EXPECT_TRUE(c.contains(5));
  EXPECT_EQ(c.sticky(), std::optional<ItemId>(5));
}

TEST(Cache, PinStickyOnExistingItem) {
  Cache c(2);
  util::Rng rng(5);
  c.insert_random_replace(5, rng);
  c.pin_sticky(5);
  EXPECT_EQ(c.size(), 1);
  EXPECT_EQ(c.sticky(), std::optional<ItemId>(5));
}

TEST(Cache, PinDifferentStickyRejected) {
  Cache c(3);
  c.pin_sticky(1);
  EXPECT_THROW(c.pin_sticky(2), std::logic_error);
  c.pin_sticky(1);  // re-pinning the same item is fine
}

TEST(Cache, DuplicateInsertRejected) {
  Cache c(3);
  util::Rng rng(6);
  c.insert_random_replace(1, rng);
  EXPECT_THROW(c.insert_random_replace(1, rng), std::logic_error);
}

TEST(Cache, EraseRules) {
  Cache c(3);
  util::Rng rng(7);
  c.pin_sticky(1);
  c.insert_random_replace(2, rng);
  EXPECT_THROW(c.erase(1), std::logic_error);   // sticky
  EXPECT_THROW(c.erase(9), std::logic_error);   // absent
  c.erase(2);
  EXPECT_FALSE(c.contains(2));
  EXPECT_EQ(c.size(), 1);
}

TEST(Cache, FullOfStickyRejectsInsert) {
  Cache c(1);
  util::Rng rng(8);
  c.pin_sticky(1);
  EXPECT_THROW(c.insert_random_replace(2, rng), std::logic_error);
}

TEST(Cache, Validation) {
  EXPECT_THROW(Cache(0), std::invalid_argument);
  EXPECT_THROW(Cache(-1), std::invalid_argument);
}

}  // namespace
}  // namespace impatience::core
