#include "impatience/util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace impatience::util {
namespace {

TEST(CsvWriter, SimpleRows) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.header({"a", "b", "c"});
  csv.row(1, 2.5, "x");
  EXPECT_EQ(os.str(), "a,b,c\n1,2.5,x\n");
}

TEST(CsvWriter, QuotesCommas) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row(std::string("hello, world"), 1);
  EXPECT_EQ(os.str(), "\"hello, world\",1\n");
}

TEST(CsvWriter, EscapesQuotes) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row(std::string("say \"hi\""));
  EXPECT_EQ(os.str(), "\"say \"\"hi\"\"\"\n");
}

TEST(CsvWriter, QuotesNewlines) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row(std::string("two\nlines"));
  EXPECT_EQ(os.str(), "\"two\nlines\"\n");
}

TEST(CsvWriter, HighPrecisionDoubles) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row(0.123456789012);
  EXPECT_EQ(os.str(), "0.123456789012\n");
}

TEST(CsvWriter, ThrowsOnBadPath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x/y.csv"), std::runtime_error);
}

TEST(CsvWriter, EmptyRow) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row_strings({});
  EXPECT_EQ(os.str(), "\n");
}

}  // namespace
}  // namespace impatience::util
