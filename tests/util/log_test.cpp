#include "impatience/util/log.hpp"

#include <gtest/gtest.h>

namespace impatience::util {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, DefaultLevelIsWarn) {
  // The library must stay quiet in tests and benches by default.
  LogLevelGuard guard;
  EXPECT_EQ(log_level(), LogLevel::Warn);
}

TEST(Log, SetAndGetLevel) {
  LogLevelGuard guard;
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(LogLevel::Off);
  EXPECT_EQ(log_level(), LogLevel::Off);
}

TEST(Log, BelowThresholdMessagesAreCheap) {
  LogLevelGuard guard;
  set_log_level(LogLevel::Off);
  // Must not crash or emit; mostly exercises the formatting template.
  log_debug("value=", 42, " pi=", 3.14);
  log_info("several ", "parts");
  log_warn("warn");
  log_error("error");
}

TEST(Log, EmitsAtOrAboveThreshold) {
  LogLevelGuard guard;
  set_log_level(LogLevel::Error);
  testing::internal::CaptureStderr();
  log_warn("should not appear");
  log_error("should appear: ", 7);
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_EQ(out.find("should not appear"), std::string::npos);
  EXPECT_NE(out.find("[ERROR] should appear: 7"), std::string::npos);
}

TEST(Log, LevelTagsInOutput) {
  LogLevelGuard guard;
  set_log_level(LogLevel::Debug);
  testing::internal::CaptureStderr();
  log_debug("d");
  log_info("i");
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("[DEBUG] d"), std::string::npos);
  EXPECT_NE(out.find("[INFO] i"), std::string::npos);
}

}  // namespace
}  // namespace impatience::util
