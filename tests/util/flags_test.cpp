#include "impatience/util/flags.hpp"

#include <gtest/gtest.h>

namespace impatience::util {
namespace {

Flags make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsForm) {
  auto f = make({"--trials=7", "--mu=0.25"});
  EXPECT_EQ(f.get_int("trials", 0), 7);
  EXPECT_DOUBLE_EQ(f.get_double("mu", 0.0), 0.25);
}

TEST(Flags, SpaceForm) {
  auto f = make({"--trials", "9"});
  EXPECT_EQ(f.get_int("trials", 0), 9);
}

TEST(Flags, BareFlagIsTrue) {
  auto f = make({"--fast"});
  EXPECT_TRUE(f.get_bool("fast", false));
}

TEST(Flags, MissingUsesFallback) {
  auto f = make({});
  EXPECT_EQ(f.get_int("absent", 42), 42);
  EXPECT_EQ(f.get_string("absent", "d"), "d");
  EXPECT_FALSE(f.get_bool("absent", false));
}

TEST(Flags, BooleanSpellings) {
  EXPECT_TRUE(make({"--x=yes"}).get_bool("x", false));
  EXPECT_TRUE(make({"--x=on"}).get_bool("x", false));
  EXPECT_TRUE(make({"--x=1"}).get_bool("x", false));
  EXPECT_FALSE(make({"--x=no"}).get_bool("x", true));
  EXPECT_FALSE(make({"--x=off"}).get_bool("x", true));
  EXPECT_FALSE(make({"--x=0"}).get_bool("x", true));
}

TEST(Flags, BadBooleanThrows) {
  EXPECT_THROW(make({"--x=maybe"}).get_bool("x", false),
               std::invalid_argument);
}

TEST(Flags, PositionalArguments) {
  auto f = make({"input.txt", "--n=3", "output.txt"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.txt");
  EXPECT_EQ(f.positional()[1], "output.txt");
}

TEST(Flags, HasDetectsPresence) {
  auto f = make({"--a=1"});
  EXPECT_TRUE(f.has("a"));
  EXPECT_FALSE(f.has("b"));
}

TEST(Flags, NegativeNumberAsValue) {
  auto f = make({"--alpha", "-1.5"});
  // "-1.5" does not look like a --flag, so it is consumed as the value.
  EXPECT_DOUBLE_EQ(f.get_double("alpha", 0.0), -1.5);
}

TEST(Flags, ProgramName) {
  auto f = make({});
  EXPECT_EQ(f.program(), "prog");
}

TEST(ParseDuration, UnitsAndBareSeconds) {
  EXPECT_DOUBLE_EQ(parse_duration("90").value(), 90.0);  // bare = seconds
  EXPECT_DOUBLE_EQ(parse_duration("250ms").value(), 0.25);
  EXPECT_DOUBLE_EQ(parse_duration("30s").value(), 30.0);
  EXPECT_DOUBLE_EQ(parse_duration("5m").value(), 300.0);
  EXPECT_DOUBLE_EQ(parse_duration("2h").value(), 7200.0);
  EXPECT_DOUBLE_EQ(parse_duration("1d").value(), 86400.0);
  EXPECT_DOUBLE_EQ(parse_duration("1.5m").value(), 90.0);  // fractional
  EXPECT_DOUBLE_EQ(parse_duration("0").value(), 0.0);
  EXPECT_DOUBLE_EQ(parse_duration("0.5").value(), 0.5);
}

TEST(ParseDuration, RejectsMalformedInput) {
  for (const char* text : {"", "abc", "10x", "-3s", "5 m", "m", "1e", "nan",
                           "inf", "1.5ss", "ms"}) {
    EXPECT_FALSE(parse_duration(text).has_value()) << "text: " << text;
  }
}

TEST(Flags, GetDurationParsesAndFallsBack) {
  auto f = make({"--snapshot-interval=30s", "--deadline", "5m",
                 "--grace=250ms", "--legacy=90"});
  EXPECT_DOUBLE_EQ(f.get_duration("snapshot-interval", 0.0), 30.0);
  EXPECT_DOUBLE_EQ(f.get_duration("deadline", 0.0), 300.0);
  EXPECT_DOUBLE_EQ(f.get_duration("grace", 0.0), 0.25);
  // Back-compat: the old integer-seconds spelling still works.
  EXPECT_DOUBLE_EQ(f.get_duration("legacy", 0.0), 90.0);
  EXPECT_DOUBLE_EQ(f.get_duration("absent", 7.5), 7.5);
}

TEST(Flags, GetDurationThrowsOnBadValue) {
  EXPECT_THROW(make({"--deadline=soon"}).get_duration("deadline", 0.0),
               std::invalid_argument);
  EXPECT_THROW(make({"--deadline=-5s"}).get_duration("deadline", 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace impatience::util
