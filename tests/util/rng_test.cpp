#include "impatience/util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace impatience::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 100; ++i) first.push_back(a());
  a.reseed(7);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a(), first[static_cast<std::size_t>(i)]);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.5, 2.5);
    ASSERT_GE(u, -3.5);
    ASSERT_LT(u, 2.5);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversRangeUniformly) {
  Rng rng(6);
  std::vector<int> hits(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++hits[rng.uniform_index(10)];
  for (int h : hits) {
    EXPECT_NEAR(static_cast<double>(h), n / 10.0, 500.0);
  }
}

TEST(Rng, UniformIndexOfOneIsZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.uniform_index(1), 0u);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(8);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(9);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliDegenerate) {
  Rng rng(10);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ExponentialMeanAndPositivity) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.exponential(2.0);
    ASSERT_GT(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(12);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(0.7));
  EXPECT_NEAR(sum / n, 0.7, 0.02);
}

TEST(Rng, PoissonLargeMeanUsesChunking) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto v = static_cast<double>(rng.poisson(95.0));
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 95.0, 0.5);
  EXPECT_NEAR(var, 95.0, 5.0);  // Poisson: variance == mean
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(14);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, NormalMoments) {
  Rng rng(15);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(Rng, NormalScaled) {
  Rng rng(16);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, LognormalMean) {
  // E[exp(N(mu, sigma))] = exp(mu + sigma^2/2).
  Rng rng(17);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.lognormal(0.0, 0.5);
  EXPECT_NEAR(sum / n, std::exp(0.125), 0.02);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(18);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(19);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);
}

TEST(Rng, WeightedIndexProportions) {
  Rng rng(20);
  const std::vector<double> w{1.0, 3.0, 0.0, 6.0};
  std::vector<int> hits(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++hits[rng.weighted_index(w)];
  EXPECT_EQ(hits[2], 0);
  EXPECT_NEAR(hits[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(hits[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(hits[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, StochasticRoundExactOnIntegers) {
  Rng rng(21);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.stochastic_round(3.0), 3);
    EXPECT_EQ(rng.stochastic_round(-2.0), -2);
    EXPECT_EQ(rng.stochastic_round(0.0), 0);
  }
}

TEST(Rng, StochasticRoundUnbiased) {
  Rng rng(22);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const auto r = rng.stochastic_round(2.3);
    ASSERT_TRUE(r == 2 || r == 3);
    sum += static_cast<double>(r);
  }
  EXPECT_NEAR(sum / n, 2.3, 0.01);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(23);
  Rng child = a.split();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == child()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

}  // namespace
}  // namespace impatience::util
