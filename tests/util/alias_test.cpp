#include "impatience/util/alias.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "impatience/core/demand.hpp"
#include "impatience/core/simulator.hpp"
#include "impatience/utility/families.hpp"

namespace impatience::util {
namespace {

// Upper chi-square critical value by the Wilson-Hilferty approximation,
// at z = 3.72 (upper tail ~1e-4): generous enough that a correct sampler
// with a fixed seed never trips it, tight enough that a mis-built table
// (wrong column mass) fails by orders of magnitude.
double chi_square_critical(std::size_t df) {
  const double d = static_cast<double>(df);
  const double t = 1.0 - 2.0 / (9.0 * d) + 3.72 * std::sqrt(2.0 / (9.0 * d));
  return d * t * t * t;
}

double chi_square_stat(const std::vector<std::size_t>& observed,
                       const std::vector<double>& weights,
                       std::size_t draws) {
  const double total =
      std::accumulate(weights.begin(), weights.end(), 0.0);
  double stat = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double expected =
        static_cast<double>(draws) * weights[i] / total;
    if (expected == 0.0) {
      EXPECT_EQ(observed[i], 0u) << "draws from a zero-weight column";
      continue;
    }
    const double diff = static_cast<double>(observed[i]) - expected;
    stat += diff * diff / expected;
  }
  return stat;
}

TEST(AliasTable, RejectsDegenerateWeights) {
  EXPECT_THROW(AliasTable(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(AliasTable(std::vector<double>{0.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(AliasTable(std::vector<double>{-1.0}), std::invalid_argument);
}

TEST(AliasTable, SingleColumnAlwaysSampled) {
  AliasTable table(std::vector<double>{3.5});
  Rng rng(1);
  for (int k = 0; k < 100; ++k) EXPECT_EQ(table.sample(rng), 0u);
}

// The table encodes the distribution exactly: column i's total mass is
// prob(i)/n plus the overflow (1 - prob(j))/n of every column j aliased
// to i. Checking that reconstruction against the normalized weights is a
// deterministic exactness test -- no sampling noise involved.
TEST(AliasTable, ReconstructsExactWeights) {
  const std::vector<double> weights{5.0, 0.25, 1.75, 0.0, 3.0, 2.0};
  AliasTable table(weights);
  ASSERT_EQ(table.size(), weights.size());
  const double total =
      std::accumulate(weights.begin(), weights.end(), 0.0);
  const double n = static_cast<double>(weights.size());
  std::vector<double> mass(weights.size(), 0.0);
  for (std::size_t c = 0; c < table.size(); ++c) {
    ASSERT_GE(table.prob(c), 0.0);
    ASSERT_LE(table.prob(c), 1.0);
    ASSERT_LT(table.alias(c), table.size());
    mass[c] += table.prob(c) / n;
    mass[table.alias(c)] += (1.0 - table.prob(c)) / n;
  }
  for (std::size_t i = 0; i < weights.size(); ++i) {
    EXPECT_NEAR(mass[i], weights[i] / total, 1e-12) << "column " << i;
  }
}

TEST(AliasTable, ChiSquareAgainstSkewedWeights) {
  // Weights spanning three orders of magnitude, including a zero.
  const std::vector<double> weights{100.0, 10.0, 1.0, 0.1, 0.0,
                                    40.0,  25.0, 3.0, 7.0, 0.5};
  AliasTable table(weights);
  Rng rng(20260805);
  const std::size_t draws = 200000;
  std::vector<std::size_t> observed(weights.size(), 0);
  for (std::size_t k = 0; k < draws; ++k) ++observed[table.sample(rng)];
  // df = (#nonzero categories) - 1.
  const double stat = chi_square_stat(observed, weights, draws);
  EXPECT_LT(stat, chi_square_critical(8));
}

TEST(AliasTable, RebuildReplacesDistribution) {
  AliasTable table(std::vector<double>{1.0, 0.0});
  table.rebuild(std::vector<double>{0.0, 1.0});
  Rng rng(7);
  for (int k = 0; k < 100; ++k) EXPECT_EQ(table.sample(rng), 1u);
}

// DemandProcess's alias path must agree with the catalog's exact d_i.
TEST(DemandAlias, ItemChiSquareAgainstCatalog) {
  const auto catalog = core::Catalog::pareto(50, 1.0, 2.0);
  core::DemandProcess demand(catalog, {0, 1, 2, 3});
  Rng rng(99);
  const std::size_t draws = 300000;
  std::vector<std::size_t> observed(catalog.num_items(), 0);
  for (std::size_t k = 0; k < draws; ++k) {
    ++observed[demand.sample_request(rng).item];
  }
  const double stat = chi_square_stat(observed, catalog.demands(), draws);
  EXPECT_LT(stat, chi_square_critical(catalog.num_items() - 1));
}

// Under a non-uniform PopularityProfile the per-item node alias tables
// must reproduce pi_{i,n} exactly (per item, over the client indices).
TEST(DemandAlias, NodeChiSquareAgainstPopularityProfile) {
  core::Catalog catalog({1.0, 3.0});
  // pi rows (item x client-index), deliberately different per item.
  const std::vector<std::vector<double>> pi{{0.7, 0.2, 0.1},
                                            {0.05, 0.15, 0.8}};
  core::DemandProcess demand(catalog, {10, 11, 12}, pi);
  Rng rng(42);
  const std::size_t draws = 300000;
  std::vector<std::vector<std::size_t>> observed(
      2, std::vector<std::size_t>(3, 0));
  std::vector<std::size_t> per_item(2, 0);
  for (std::size_t k = 0; k < draws; ++k) {
    const auto request = demand.sample_request(rng);
    ASSERT_GE(request.node, 10u);
    ASSERT_LE(request.node, 12u);
    ++observed[request.item][request.node - 10];
    ++per_item[request.item];
  }
  for (std::size_t i = 0; i < 2; ++i) {
    const double stat = chi_square_stat(observed[i], pi[i], per_item[i]);
    EXPECT_LT(stat, chi_square_critical(2)) << "item " << i;
  }
}

// The linear reference and the alias path sample the same distribution
// (they are different RNG-stream mappings of identical weights).
TEST(DemandAlias, MatchesLinearReferenceDistribution) {
  const auto catalog = core::Catalog::pareto(20, 1.0, 1.0);
  core::DemandProcess demand(catalog, {0, 1});
  Rng rng_a(5), rng_b(6);
  const std::size_t draws = 200000;
  std::vector<std::size_t> alias_counts(20, 0), linear_counts(20, 0);
  for (std::size_t k = 0; k < draws; ++k) {
    ++alias_counts[demand.sample_request(rng_a).item];
    ++linear_counts[demand.sample_request_linear(rng_b).item];
  }
  const double stat_alias =
      chi_square_stat(alias_counts, catalog.demands(), draws);
  const double stat_linear =
      chi_square_stat(linear_counts, catalog.demands(), draws);
  EXPECT_LT(stat_alias, chi_square_critical(19));
  EXPECT_LT(stat_linear, chi_square_critical(19));
}

// A demand_schedule switch rebuilds the alias tables: run the event
// kernel (the only consumer of the alias path inside simulate) on a
// meeting-free trace where one node holds both items, with nearly all
// catalog mass on item 0 before the switch and on item 1 after it. Every
// request resolves as an immediate own-cache hit, so the per-item
// fulfilment counts read back which table was live in each half.
TEST(DemandAlias, SimulatorRebuildsTablesOnScheduleSwitch) {
  trace::ContactTrace no_meetings(1, 4000, {});
  core::Catalog before({0.5, 0.0000005});
  core::Catalog after({0.0000005, 0.5});

  alloc::Placement placement(2, 1, 2);
  placement.add(0, 0);
  placement.add(1, 0);

  core::SimOptions options;
  options.cache_capacity = 2;
  options.kernel = core::SimKernel::event_driven;
  options.sticky_replicas = false;
  options.initial_placement = placement;
  options.demand_schedule.emplace_back(2000, after);
  std::vector<std::uint64_t> hits(2, 0);
  options.on_fulfillment = [&](core::ItemId item, trace::NodeId, double,
                               double) { ++hits[item]; };

  utility::StepUtility u(10.0);
  core::StaticPolicy policy;
  Rng rng(314);
  const auto result =
      core::simulate(no_meetings, before, u, policy, options, rng);

  // ~1000 requests per half; a stale table would leave one side at ~0.
  EXPECT_GT(hits[0], 800u);
  EXPECT_GT(hits[1], 800u);
  EXPECT_EQ(result.requests_created,
            result.immediate_fulfillments + result.fulfillments +
                result.censored_requests);
}

}  // namespace
}  // namespace impatience::util
