#include "impatience/util/math.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace impatience::util {
namespace {

TEST(Integrate, Polynomial) {
  // int_0^2 (3x^2 + 1) dx = 8 + 2 = 10.
  const double v =
      integrate([](double x) { return 3.0 * x * x + 1.0; }, 0.0, 2.0);
  EXPECT_NEAR(v, 10.0, 1e-9);
}

TEST(Integrate, ReversedBoundsNegate) {
  const double fwd = integrate([](double x) { return x; }, 0.0, 1.0);
  const double bwd = integrate([](double x) { return x; }, 1.0, 0.0);
  EXPECT_NEAR(fwd, -bwd, 1e-12);
}

TEST(Integrate, EmptyIntervalIsZero) {
  EXPECT_EQ(integrate([](double x) { return x * x; }, 2.0, 2.0), 0.0);
}

TEST(Integrate, OscillatoryFunction) {
  // int_0^pi sin(x) dx = 2.
  const double v =
      integrate([](double x) { return std::sin(x); }, 0.0, M_PI);
  EXPECT_NEAR(v, 2.0, 1e-9);
}

TEST(IntegrateToInf, ExponentialDecay) {
  // int_0^inf e^{-3t} dt = 1/3.
  const double v =
      integrate_to_inf([](double t) { return std::exp(-3.0 * t); });
  EXPECT_NEAR(v, 1.0 / 3.0, 1e-8);
}

TEST(IntegrateToInf, GammaIntegrand) {
  // int_0^inf t e^{-t} dt = 1.
  const double v =
      integrate_to_inf([](double t) { return t * std::exp(-t); });
  EXPECT_NEAR(v, 1.0, 1e-8);
}

TEST(IntegrateToInf, ScaledGamma) {
  // int_0^inf t^2 e^{-2t} dt = Gamma(3)/8 = 0.25.
  const double v = integrate_to_inf(
      [](double t) { return t * t * std::exp(-2.0 * t); });
  EXPECT_NEAR(v, 0.25, 1e-8);
}

TEST(Bisect, FindsRoot) {
  const double r =
      bisect([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  EXPECT_NEAR(r, std::sqrt(2.0), 1e-10);
}

TEST(Bisect, RootAtBoundary) {
  EXPECT_EQ(bisect([](double x) { return x; }, 0.0, 1.0), 0.0);
}

TEST(Bisect, ThrowsOnSameSign) {
  EXPECT_THROW(bisect([](double x) { return x * x + 1.0; }, -1.0, 1.0),
               std::invalid_argument);
}

TEST(Bisect, DecreasingFunction) {
  const double r = bisect([](double x) { return 1.0 - x; }, 0.0, 3.0);
  EXPECT_NEAR(r, 1.0, 1e-10);
}

TEST(InvertDecreasing, Interior) {
  // g(x) = 1/x; g(x) = 0.25 at x = 4.
  const double x = invert_decreasing([](double v) { return 1.0 / v; }, 0.25,
                                     0.01, 100.0);
  EXPECT_NEAR(x, 4.0, 1e-8);
}

TEST(InvertDecreasing, ClampsLow) {
  // target above g(lo) -> lo.
  const double x = invert_decreasing([](double v) { return 1.0 / v; }, 1000.0,
                                     0.5, 100.0);
  EXPECT_EQ(x, 0.5);
}

TEST(InvertDecreasing, ClampsHigh) {
  const double x = invert_decreasing([](double v) { return 1.0 / v; }, 1e-9,
                                     0.5, 100.0);
  EXPECT_EQ(x, 100.0);
}

TEST(GammaFn, KnownValues) {
  EXPECT_NEAR(gamma_fn(1.0), 1.0, 1e-12);
  EXPECT_NEAR(gamma_fn(2.0), 1.0, 1e-12);
  EXPECT_NEAR(gamma_fn(5.0), 24.0, 1e-9);
  EXPECT_NEAR(gamma_fn(0.5), std::sqrt(M_PI), 1e-10);
}

TEST(GammaFn, ThrowsOnNonPositive) {
  EXPECT_THROW(gamma_fn(0.0), std::domain_error);
  EXPECT_THROW(gamma_fn(-1.5), std::domain_error);
}

TEST(ApproxEqual, Basics) {
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(approx_equal(1.0, 1.001));
  EXPECT_TRUE(approx_equal(1e12, 1e12 * (1 + 1e-10)));
  EXPECT_TRUE(approx_equal(0.0, 1e-10));
}

}  // namespace
}  // namespace impatience::util
