#include "impatience/util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace impatience::util {
namespace {

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"name", "v"});
  t.row("alpha", 1);
  t.row("b", 22);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // Every line has the same length.
  std::istringstream is(out);
  std::string line;
  std::size_t len = 0;
  while (std::getline(is, line)) {
    if (len == 0) len = line.size();
    EXPECT_EQ(line.size(), len);
  }
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(TablePrinter, ShortRowsArePadded) {
  TablePrinter t({"a", "b", "c"});
  t.add_row({"x"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("x"), std::string::npos);
}

TEST(TablePrinter, FloatingPointPrecision) {
  TablePrinter t({"v"});
  t.set_precision(3);
  t.row(1.23456);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("1.23"), std::string::npos);
  EXPECT_EQ(os.str().find("1.2346"), std::string::npos);
}

TEST(TablePrinter, IntegralDoublesKeepAllDigits) {
  TablePrinter t({"v"});
  t.row(123456.0);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("123456"), std::string::npos);
}

}  // namespace
}  // namespace impatience::util
