#include "impatience/util/backoff.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "impatience/engine/seeding.hpp"
#include "impatience/util/rng.hpp"

namespace impatience::util {
namespace {

TEST(Backoff, IsAPureFunctionOfPolicySeedAttempt) {
  const BackoffPolicy policy{0.01, 1.0};
  for (int attempt = 1; attempt <= 12; ++attempt) {
    const double a = backoff_delay(policy, 42, attempt);
    const double b = backoff_delay(policy, 42, attempt);
    EXPECT_EQ(a, b);  // bitwise: no wall-clock randomness anywhere
  }
  EXPECT_NE(backoff_delay(policy, 42, 3), backoff_delay(policy, 43, 3));
  EXPECT_NE(backoff_delay(policy, 42, 3), backoff_delay(policy, 42, 4));
}

TEST(Backoff, GrowsExponentiallyWithinJitterBandAndCaps) {
  const BackoffPolicy policy{0.01, 1.0};
  for (int attempt = 1; attempt <= 30; ++attempt) {
    const double nominal =
        std::min(policy.base_seconds * std::ldexp(1.0, attempt - 1),
                 policy.max_seconds);
    const double d = backoff_delay(policy, 7, attempt);
    EXPECT_GE(d, 0.5 * nominal);
    EXPECT_LE(d, 1.5 * nominal);
    EXPECT_LE(d, 1.5 * policy.max_seconds);  // cap holds past attempt 7
  }
}

TEST(Backoff, ZeroBaseDisablesDelays) {
  EXPECT_EQ(backoff_delay({0.0, 1.0}, 9, 5), 0.0);
  EXPECT_EQ(backoff_delay({-1.0, 1.0}, 9, 5), 0.0);
}

TEST(Backoff, MatchesTheEngineRetryDerivation) {
  // The helper was extracted from engine::Runner's retry loop; the
  // jitter stream must stay bit-identical to the original inline code
  // (SplitMix64's single mix round == engine::mix64).
  const BackoffPolicy policy{0.25, 8.0};
  const std::uint64_t seed = 91;
  for (int attempt = 1; attempt <= 8; ++attempt) {
    const double nominal =
        std::min(policy.base_seconds * std::ldexp(1.0, attempt - 1),
                 policy.max_seconds);
    Rng rng(engine::mix64(seed ^
                          (0xB0FFULL + static_cast<std::uint64_t>(attempt))));
    const double expected = nominal * (0.5 + rng.uniform());
    EXPECT_EQ(backoff_delay(policy, seed, attempt), expected);
  }
}

}  // namespace
}  // namespace impatience::util
