#include "impatience/service/state_store.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "impatience/util/errors.hpp"

namespace impatience::service {
namespace {

StoreConfig small_config() {
  StoreConfig config;
  config.num_nodes = 16;
  config.num_items = 12;
  config.cache_capacity = 3;
  return config;
}

std::vector<Event> workload(std::uint64_t events, std::uint64_t seed,
                            double crash_fraction = 0.0) {
  StreamConfig config;
  config.events = events;
  config.num_nodes = 16;
  config.num_items = 12;
  config.crash_fraction = crash_fraction;
  config.quit = false;
  return generate_stream(config, seed);
}

std::string serialized(const StateStore& store) {
  std::ostringstream out;
  write_image(out, store.image());
  return out.str();
}

class TempFile {
 public:
  explicit TempFile(const char* stem) {
    path_ = ::testing::TempDir() + stem + "_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)) + ".snap";
  }
  ~TempFile() {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(ServiceStateStore, FreshInitIsSeededAndSticky) {
  StateStore a(small_config(), 42);
  StateStore b(small_config(), 42);
  StateStore c(small_config(), 43);
  EXPECT_EQ(serialized(a), serialized(b));
  EXPECT_NE(serialized(a), serialized(c));
  EXPECT_EQ(a.version(), 0u);

  // Every item has at least one replica (seeders pin 0..num_items-1).
  const auto counts = a.replica_counts();
  for (long count : counts) EXPECT_GE(count, 1);
  const auto image = a.image();
  for (ItemId i = 0; i < 12; ++i) {
    EXPECT_EQ(image.nodes[i].sticky, static_cast<std::int64_t>(i));
  }
}

TEST(ServiceStateStore, VersionIsMonotonicPerMutation) {
  StateStore store(small_config(), 1);
  std::uint64_t last = store.version();
  for (const Event& event : workload(300, 5)) {
    const std::uint64_t version = store.apply(event);
    EXPECT_GT(version, last);  // every event bumps at least once
    last = version;
  }
  EXPECT_EQ(store.version(), last);
  // Replica writes bump beyond the per-event tick.
  EXPECT_GE(last, store.counters().events_applied);
}

TEST(ServiceStateStore, CopyOnReadImageIsStable) {
  StateStore store(small_config(), 2);
  for (const Event& event : workload(200, 6)) store.apply(event);
  const StateImage image = store.image();
  const std::uint64_t version_at_copy = image.version;
  // Mutating the store after the copy must not affect the image.
  for (const Event& event : workload(100, 7)) store.apply(event);
  EXPECT_EQ(image.version, version_at_copy);
  EXPECT_GT(store.version(), version_at_copy);
  std::ostringstream a, b;
  write_image(a, image);
  write_image(b, image);
  EXPECT_EQ(a.str(), b.str());
}

TEST(ServiceStateStore, AppliesTheCoreSemantics) {
  StateStore store(small_config(), 3);
  std::uint64_t applied = 0;
  for (const Event& event : workload(2000, 8)) {
    store.apply(event);
    ++applied;
  }
  const StoreCounters k = store.counters();
  EXPECT_EQ(k.events_applied, applied);
  EXPECT_GT(k.contacts, 0u);
  EXPECT_GT(k.requests_created, 0u);
  EXPECT_GT(k.fulfillments, 0u);
  EXPECT_GT(k.total_gain, 0.0);
  EXPECT_GT(k.replicas_written, 0);
  // Served + still-pending = created.
  EXPECT_EQ(k.immediate_fulfillments + k.fulfillments + k.requests_pending,
            k.requests_created);
  EXPECT_TRUE(store.mandate_conservation_ok());
  EXPECT_GT(store.delay_percentile(0.99), 0.0);
  EXPECT_GE(store.delay_percentile(0.99), store.delay_percentile(0.50));
}

TEST(ServiceStateStore, OutOfRangeEventsCountMalformedNotCrash) {
  StateStore store(small_config(), 4);
  store.apply({Event::Kind::contact, 0, 99, 1, 0});
  store.apply({Event::Kind::request, 0, 1, 0, 99});
  store.apply({Event::Kind::crash, 0, 99, 0, 0});
  EXPECT_EQ(store.counters().events_malformed, 3u);
  EXPECT_EQ(store.seq(), 3u);  // stream position still advances
}

TEST(ServiceStateStore, SnapshotRoundTripsByteExactly) {
  StateStore store(small_config(), 5);
  for (const Event& event : workload(800, 9, 0.01)) store.apply(event);
  TempFile file("roundtrip");
  store.save_snapshot(file.path());
  const StateImage loaded = load_image(file.path());
  std::ostringstream a, b;
  write_image(a, store.image());
  write_image(b, loaded);
  EXPECT_EQ(a.str(), b.str());
}

// The acceptance criterion: interrupt at an arbitrary event, snapshot,
// restore, replay the tail — the final serialized state must be byte-
// identical to the uninterrupted run, crashes included.
TEST(ServiceStateStore, WarmRestartIsStateIdentical) {
  const auto events = workload(2000, 10, 0.005);
  const std::size_t cut = 900;

  StateStore uninterrupted(small_config(), 6);
  for (const Event& event : events) uninterrupted.apply(event);

  StateStore first(small_config(), 6);
  for (std::size_t i = 0; i < cut; ++i) first.apply(events[i]);
  TempFile file("warmrestart");
  first.save_snapshot(file.path());

  StateStore resumed(small_config(), 6, load_image(file.path()));
  EXPECT_EQ(resumed.seq(), cut);
  for (std::size_t i = cut; i < events.size(); ++i) resumed.apply(events[i]);

  EXPECT_EQ(serialized(uninterrupted), serialized(resumed));
  EXPECT_TRUE(resumed.mandate_conservation_ok());
}

// SIGKILL mid-snapshot leaves `<path>.tmp` garbage while the atomic
// rename never replaced `<path>`: loading must ignore the temp file and
// come back from the last consistent snapshot.
TEST(ServiceStateStore, RestoreFallsBackPastTornTempFile) {
  StateStore store(small_config(), 7);
  const auto events = workload(600, 11);
  for (std::size_t i = 0; i < 300; ++i) store.apply(events[i]);
  TempFile file("tornsnap");
  store.save_snapshot(file.path());
  const std::string consistent = serialized(store);

  // Simulate the torn write: a half-serialized temp next to the good file.
  {
    std::ofstream torn(file.path() + ".tmp");
    torn << "impatience.replicationd_snapshot/1\nconfig 16 12 3";
  }

  auto restored = StateStore::restore(small_config(), 7, file.path());
  EXPECT_EQ(serialized(*restored), consistent);
  EXPECT_TRUE(restored->mandate_conservation_ok());
}

TEST(ServiceStateStore, TruncatedOrCorruptSnapshotIsRejected) {
  StateStore store(small_config(), 8);
  for (const Event& event : workload(200, 12)) store.apply(event);
  TempFile file("corrupt");
  store.save_snapshot(file.path());

  std::string text;
  {
    std::ifstream in(file.path());
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  }
  // Truncation: drop the trailer and half the body.
  {
    std::istringstream in(text.substr(0, text.size() / 2));
    EXPECT_THROW(read_image(in), util::IoError);
  }
  // Bit flip inside the body: checksum must catch it.
  {
    std::string flipped = text;
    flipped[text.size() / 3] ^= 1;
    std::istringstream in(flipped);
    EXPECT_THROW(read_image(in), util::IoError);
  }
  // Not a snapshot at all.
  {
    std::istringstream in(std::string("hello world\n"));
    EXPECT_THROW(read_image(in), util::IoError);
  }
  EXPECT_THROW(load_image(file.path() + ".does-not-exist"), util::IoError);
}

TEST(ServiceStateStore, RestoreRefusesMismatchedScenario) {
  StateStore store(small_config(), 9);
  TempFile file("mismatch");
  store.save_snapshot(file.path());

  StoreConfig other = small_config();
  other.cache_capacity = 4;
  EXPECT_THROW(StateStore(other, 9, load_image(file.path())),
               std::invalid_argument);
  // Wrong seed would silently change replay randomness: refused too.
  EXPECT_THROW(StateStore(small_config(), 10, load_image(file.path())),
               std::invalid_argument);
}

TEST(ServiceStateStore, CrashEventsDegradeConservationGracefully) {
  StateStore store(small_config(), 11);
  for (const Event& event : workload(1500, 13, 0.02)) store.apply(event);
  const auto f = store.faults();
  EXPECT_GT(f.crashes, 0u);
  // Losses are accounted, so the invariant still closes.
  EXPECT_TRUE(store.mandate_conservation_ok());
  // Sticky seeders survive crashes: no item can go extinct.
  for (long count : store.replica_counts()) EXPECT_GE(count, 1);
}

TEST(ServiceStateStore, ValidatesConfig) {
  StoreConfig bad = small_config();
  bad.cache_capacity = 0;
  EXPECT_THROW(StateStore(bad, 1), std::invalid_argument);
  bad = small_config();
  bad.utility_spec = "no spaces allowed";
  EXPECT_THROW(StateStore(bad, 1), std::invalid_argument);
  bad = small_config();
  bad.mu = 0.0;
  EXPECT_THROW(StateStore(bad, 1), std::invalid_argument);
}

}  // namespace
}  // namespace impatience::service
