// StreamFeeder tests (suite Replfeed; scripts/check_engine_tsan.sh sweeps
// it under ThreadSanitizer). The heart of the suite is the chaos identity
// lock: a feeder streaming through deterministic network faults, against
// a daemon that keeps getting stopped and warm-restarted, must leave the
// store byte-identical to one unbroken clean run.
#include "impatience/service/feeder.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>

#include "impatience/service/daemon.hpp"
#include "impatience/service/protocol.hpp"
#include "impatience/util/backoff.hpp"
#include "impatience/util/errors.hpp"

namespace impatience::service {
namespace {

StoreConfig small_config() {
  StoreConfig config;
  config.num_nodes = 16;
  config.num_items = 12;
  config.cache_capacity = 3;
  return config;
}

class TempPath {
 public:
  explicit TempPath(const char* stem) {
    path_ = ::testing::TempDir() + stem + "_" +
            std::to_string(::getpid()) + "_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this));
  }
  ~TempPath() {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Writes a deterministic event file (no Q: the feeder owns completion).
std::uint64_t write_stream_file(const std::string& path,
                                std::uint64_t events, std::uint64_t seed,
                                double crash_fraction = 0.0) {
  StreamConfig config;
  config.events = events;
  config.num_nodes = 16;
  config.num_items = 12;
  config.crash_fraction = crash_fraction;
  config.quit = false;
  const auto stream = generate_stream(config, seed);
  std::ofstream out(path);
  write_stream(out, stream);
  return stream.size();
}

/// Serialized image of a store fed the whole file in-process — the clean
/// unbroken reference every resilience test compares against.
std::string reference_image(const StoreConfig& config, std::uint64_t seed,
                            const std::string& stream_path) {
  StateStore store(config, seed);
  std::ifstream in(stream_path);
  std::string line;
  while (std::getline(in, line)) {
    Event event;
    const LineClass cls = classify_line(line, &event);
    if (cls == LineClass::event) {
      store.apply(event);
    } else if (cls == LineClass::malformed) {
      store.apply_malformed();
    }
  }
  std::ostringstream out;
  write_image(out, store.image());
  return out.str();
}

std::string image_text(const StateStore& store) {
  std::ostringstream out;
  write_image(out, store.image());
  return out.str();
}

TEST(Replfeed, StreamsCleanlyAndStoreMatchesUnbrokenRun) {
  TempPath stream("replfeed_clean_stream");
  TempPath socket("replfeed_clean_sock");
  const std::uint64_t total = write_stream_file(stream.path(), 400, 91);

  DaemonConfig dconfig;
  dconfig.store = small_config();
  dconfig.seed = 91;
  dconfig.socket_path = socket.path();
  dconfig.http_port = -1;
  ReplicationDaemon daemon(dconfig);
  std::thread runner([&] { daemon.run(nullptr); });

  FeederConfig fconfig;
  fconfig.socket_path = socket.path();
  fconfig.input_path = stream.path();
  fconfig.seed = 5;
  StreamFeeder feeder(fconfig);
  EXPECT_EQ(feeder.frames_total(), total);

  const FeederReport report = feeder.run();
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.frames_sent, total);
  EXPECT_EQ(report.last_acked_seq, total);
  EXPECT_GE(report.handshakes, 2u);  // opening + completion confirm
  EXPECT_EQ(report.reconnect_backoffs, 0u);

  daemon.stop();
  runner.join();
  EXPECT_EQ(daemon.store().seq(), total);
  EXPECT_EQ(image_text(daemon.store()),
            reference_image(dconfig.store, dconfig.seed, stream.path()));
}

TEST(Replfeed, BackoffScheduleReplaysFromSeedAlone) {
  TempPath stream("replfeed_backoff_stream");
  write_stream_file(stream.path(), 5, 3);

  FeederConfig config;
  // Nothing listens here: every attempt fails, so the report records a
  // pure backoff schedule.
  config.socket_path = ::testing::TempDir() + "replfeed_no_such_socket";
  config.input_path = stream.path();
  config.seed = 77;
  config.backoff = {0.001, 0.004};
  config.max_attempts = 6;

  const FeederReport first = StreamFeeder(config).run();
  EXPECT_FALSE(first.complete);
  ASSERT_EQ(first.backoff_delays.size(), 5u);  // attempts 1..5 back off
  // The schedule is a pure function of (policy, seed, attempt) — no
  // wall-clock randomness — so it replays bit-for-bit...
  for (std::size_t k = 0; k < first.backoff_delays.size(); ++k) {
    EXPECT_EQ(first.backoff_delays[k],
              util::backoff_delay(config.backoff, config.seed,
                                  static_cast<int>(k) + 1));
  }
  const FeederReport second = StreamFeeder(config).run();
  EXPECT_EQ(first.backoff_delays, second.backoff_delays);

  // ...and it actually depends on the seed (jitter is live).
  config.seed = 78;
  const FeederReport other = StreamFeeder(config).run();
  ASSERT_EQ(other.backoff_delays.size(), first.backoff_delays.size());
  EXPECT_NE(first.backoff_delays, other.backoff_delays);
}

TEST(Replfeed, EngagedZeroChaosShimIsBitIdenticalToNoShim) {
  TempPath stream("replfeed_zero_stream");
  const std::uint64_t total = write_stream_file(stream.path(), 300, 17);

  std::string images[2];
  FeederReport reports[2];
  for (int variant = 0; variant < 2; ++variant) {
    TempPath socket("replfeed_zero_sock");
    DaemonConfig dconfig;
    dconfig.store = small_config();
    dconfig.seed = 17;
    dconfig.socket_path = socket.path();
    dconfig.http_port = -1;
    ReplicationDaemon daemon(dconfig);
    std::thread runner([&] { daemon.run(nullptr); });

    FeederConfig fconfig;
    fconfig.socket_path = socket.path();
    fconfig.input_path = stream.path();
    fconfig.seed = 9;
    fconfig.chaos.engage_when_zero = variant == 1;
    ASSERT_FALSE(fconfig.chaos.any());
    StreamFeeder feeder(fconfig);
    reports[variant] = feeder.run();
    daemon.stop();
    runner.join();
    images[variant] = image_text(daemon.store());
  }
  EXPECT_TRUE(reports[0].complete);
  EXPECT_TRUE(reports[1].complete);
  EXPECT_EQ(reports[0].frames_sent, total);
  EXPECT_EQ(reports[1].frames_sent, total);
  EXPECT_EQ(reports[1].chaos.resets, 0u);
  EXPECT_EQ(reports[1].chaos.partial_writes, 0u);
  EXPECT_EQ(reports[1].chaos.garbage_bursts, 0u);
  EXPECT_EQ(reports[1].chaos.stalls, 0u);
  EXPECT_EQ(images[0], images[1]);
}

TEST(Replfeed, ChaosScheduleAndCountersAreSeedDeterministic) {
  TempPath stream("replfeed_chaos_det_stream");
  const std::uint64_t total = write_stream_file(stream.path(), 250, 23);

  const auto run_once = [&](std::uint64_t chaos_seed) {
    TempPath socket("replfeed_chaos_det_sock");
    DaemonConfig dconfig;
    dconfig.store = small_config();
    dconfig.seed = 23;
    dconfig.socket_path = socket.path();
    dconfig.http_port = -1;
    ReplicationDaemon daemon(dconfig);
    std::thread runner([&] { daemon.run(nullptr); });

    FeederConfig fconfig;
    fconfig.socket_path = socket.path();
    fconfig.input_path = stream.path();
    fconfig.seed = 4;
    fconfig.reply_timeout_s = 2.0;
    fconfig.backoff = {0.001, 0.002};  // fast retries, still jittered
    fconfig.chaos.p_reset = 0.03;
    fconfig.chaos.p_partial = 0.03;
    fconfig.chaos.p_garbage = 0.02;
    fconfig.chaos.seed = chaos_seed;
    StreamFeeder feeder(fconfig);
    const FeederReport report = feeder.run();
    daemon.stop();
    runner.join();
    return std::make_pair(report, image_text(daemon.store()));
  };

  const auto [a, image_a] = run_once(111);
  const auto [b, image_b] = run_once(111);
  EXPECT_TRUE(a.complete);
  EXPECT_TRUE(b.complete);
  // Same chaos seed => identical injection schedule, so identical
  // counters and identical wire traffic.
  EXPECT_EQ(a.chaos.resets, b.chaos.resets);
  EXPECT_EQ(a.chaos.partial_writes, b.chaos.partial_writes);
  EXPECT_EQ(a.chaos.garbage_bursts, b.chaos.garbage_bursts);
  EXPECT_EQ(a.chaos.bytes_garbage, b.chaos.bytes_garbage);
  EXPECT_EQ(a.frames_sent, b.frames_sent);
  EXPECT_GT(a.chaos.resets + a.chaos.partial_writes + a.chaos.garbage_bursts,
            0u);
  // Chaos cuts a frame *before* it completes, so the daemon never loses
  // an acked frame on a live daemon: every frame is counted exactly once
  // even though partial/garbage bytes hit the wire.
  EXPECT_EQ(a.frames_sent, total);
  EXPECT_GT(a.connections, 1u);  // the faults forced reconnects

  // And the store cannot tell any of it happened.
  const std::string reference =
      reference_image(small_config(), 23, stream.path());
  EXPECT_EQ(image_a, reference);
  EXPECT_EQ(image_b, reference);
}

// The tentpole lock: >= 2000 events with K frames in the stream, chaos
// faults on the wire, AND the daemon being stopped and warm-restarted
// underneath the feeder (including once from a deliberately stale
// snapshot, moving the acked cursor backwards) — the final store must be
// byte-identical to one unbroken clean run.
TEST(Replfeed, ChaosPlusDaemonRestartsPreserveByteIdentity) {
  TempPath stream("replfeed_lock_stream");
  TempPath socket("replfeed_lock_sock");
  TempPath snapshot("replfeed_lock_snap");
  const std::uint64_t total =
      write_stream_file(stream.path(), 2100, 42, /*crash_fraction=*/0.01);
  ASSERT_GE(total, 2000u);

  DaemonConfig dconfig;
  dconfig.store = small_config();
  dconfig.seed = 42;
  dconfig.socket_path = socket.path();
  dconfig.http_port = -1;
  dconfig.snapshot_path = snapshot.path();
  dconfig.snapshot_every = 157;

  FeederConfig fconfig;
  fconfig.socket_path = socket.path();
  fconfig.input_path = stream.path();
  fconfig.seed = 6;
  fconfig.reply_timeout_s = 1.0;
  fconfig.backoff = {0.001, 0.01};
  fconfig.chaos.p_reset = 0.01;
  fconfig.chaos.p_partial = 0.01;
  fconfig.chaos.p_garbage = 0.005;
  fconfig.chaos.seed = 1234;
  StreamFeeder feeder(fconfig);

  std::atomic<bool> done{false};
  FeederReport report;
  std::thread feed([&] {
    report = feeder.run();
    done.store(true);
  });

  auto daemon = std::make_unique<ReplicationDaemon>(dconfig);
  std::thread runner([&] { daemon->run(nullptr); });
  std::string stale;  // bytes of an earlier snapshot, for the stale cycle

  for (int cycle = 0; cycle < 3 && !done.load(); ++cycle) {
    // Let the feeder make some progress against this incarnation.
    for (int i = 0; i < 40 && !done.load(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    if (cycle == 0) {
      // Keep a copy of whatever the cadence has persisted so far.
      std::ifstream in(snapshot.path(), std::ios::binary);
      if (in) {
        std::ostringstream buf;
        buf << in.rdbuf();
        stale = buf.str();
      }
    }
    daemon->stop();
    runner.join();
    daemon.reset();  // graceful exit wrote a final snapshot
    if (cycle == 1 && !stale.empty()) {
      // Simulate a crash that lost recent state: restore from the old
      // snapshot. The feeder's next handshake acks a smaller seq and it
      // re-sends the difference; the store applies each seq exactly
      // once, so identity still holds.
      std::ofstream out(snapshot.path(), std::ios::binary);
      out << stale;
    }
    dconfig.restore = true;
    daemon = std::make_unique<ReplicationDaemon>(dconfig);
    EXPECT_TRUE(daemon->restored());
    runner = std::thread([&] { daemon->run(nullptr); });
  }

  feed.join();
  daemon->stop();
  runner.join();

  EXPECT_TRUE(report.complete);
  EXPECT_GE(report.connections, 4u);  // at least one per daemon incarnation
  EXPECT_EQ(daemon->store().seq(), total);
  const StoreCounters k = daemon->store().counters();
  EXPECT_EQ(k.events_malformed, 0u);  // chaos garbage never became a frame
  EXPECT_EQ(image_text(daemon->store()),
            reference_image(dconfig.store, dconfig.seed, stream.path()));
}

TEST(Replfeed, ChaosConfigValidates) {
  ChaosNetConfig chaos;
  chaos.validate();  // all-zero is fine
  chaos.p_reset = 1.5;
  EXPECT_THROW(chaos.validate(), std::invalid_argument);
  chaos.p_reset = 0.0;
  chaos.p_stall = 0.5;
  chaos.stall_max_seconds = 0.0;
  EXPECT_THROW(chaos.validate(), std::invalid_argument);
  chaos.stall_max_seconds = 0.001;
  chaos.validate();
  chaos.p_garbage = 0.1;
  chaos.garbage_max_bytes = 0;
  EXPECT_THROW(chaos.validate(), std::invalid_argument);
}

TEST(Replfeed, RendersFeederMetrics) {
  FeederReport report;
  report.frames_total = 10;
  report.frames_sent = 12;
  report.complete = true;
  report.chaos.resets = 2;
  const std::string text = render_feeder_metrics(report);
  EXPECT_NE(text.find("replfeed_frames_total 10\n"), std::string::npos);
  EXPECT_NE(text.find("replfeed_frames_sent_total 12\n"), std::string::npos);
  EXPECT_NE(text.find("replfeed_complete 1\n"), std::string::npos);
  EXPECT_NE(text.find("replfeed_chaos_resets_total 2\n"), std::string::npos);
}

}  // namespace
}  // namespace impatience::service
