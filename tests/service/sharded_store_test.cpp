// Bitwise-identity lock for the sharded parallel apply pipeline (suite
// ServiceShardedStore; scripts/check_engine_tsan.sh sweeps it under
// ThreadSanitizer). The contract under test is absolute: for ANY shard
// count, thread count, and window size, apply_batch must leave the store
// byte-identical — serialized image for serialized image — to the
// sequential apply/apply_malformed path, malformed and out-of-range
// lines included, across snapshot/restore cuts at arbitrary points, and
// through the chaos-shimmed feeder over both transports.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "impatience/service/daemon.hpp"
#include "impatience/service/feeder.hpp"
#include "impatience/service/protocol.hpp"
#include "impatience/service/state_store.hpp"

namespace impatience::service {
namespace {

StoreConfig small_config() {
  StoreConfig config;
  config.num_nodes = 16;
  config.num_items = 12;
  config.cache_capacity = 3;
  return config;
}

class TempPath {
 public:
  explicit TempPath(const char* stem) {
    path_ = ::testing::TempDir() + stem + "_" +
            std::to_string(::getpid()) + "_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this));
  }
  ~TempPath() {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Ingest lines from a generated workload, with every `malformed_every`-th
/// position occupied by an unparseable line (they hold a seq slot too,
/// so the pipeline must commit them in order like any other line).
std::vector<IngestLine> workload_lines(std::uint64_t events,
                                       std::uint64_t seed,
                                       double crash_fraction = 0.0,
                                       std::size_t malformed_every = 0) {
  StreamConfig config;
  config.events = events;
  config.num_nodes = 16;
  config.num_items = 12;
  config.crash_fraction = crash_fraction;
  config.quit = false;
  std::vector<IngestLine> lines;
  for (const Event& event : generate_stream(config, seed)) {
    lines.push_back({false, event});
    if (malformed_every > 0 && lines.size() % malformed_every == 0) {
      lines.push_back({true, Event{}});
    }
  }
  return lines;
}

std::string serialized(const StateStore& store) {
  std::ostringstream out;
  write_image(out, store.image());
  return out.str();
}

/// The reference semantics: one line at a time, no pipeline.
void apply_per_line(StateStore& store, std::span<const IngestLine> lines) {
  for (const IngestLine& line : lines) {
    if (line.malformed) {
      store.apply_malformed();
    } else {
      store.apply(line.event);
    }
  }
}

TEST(ServiceShardedStore, ApplyOptionsValidate) {
  ApplyOptions options;
  EXPECT_NO_THROW(options.validate());
  EXPECT_FALSE(options.parallel());
  options.shards = 8;
  options.threads = 4;
  EXPECT_TRUE(options.parallel());
  options.window = 0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options.window = 256;
  options.shards = 0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options.shards = 8;
  options.threads = 0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
}

TEST(ServiceShardedStore, BatchIsByteIdenticalToPerLineApply) {
  const auto lines = workload_lines(1500, 21, 0.01, 17);
  StateStore reference(small_config(), 21);
  apply_per_line(reference, lines);
  const std::string want = serialized(reference);

  for (unsigned shards : {1u, 2u, 8u}) {
    for (unsigned threads : {1u, 2u, 4u}) {
      for (std::size_t window : {std::size_t{1}, std::size_t{7},
                                 std::size_t{256}}) {
        ApplyOptions options;
        options.shards = shards;
        options.threads = threads;
        options.window = window;
        StateStore store(small_config(), 21, options);
        store.apply_batch(lines);
        EXPECT_EQ(serialized(store), want)
            << "shards=" << shards << " threads=" << threads
            << " window=" << window;
      }
    }
  }
}

TEST(ServiceShardedStore, ChunkBoundariesDoNotAffectState) {
  const auto lines = workload_lines(900, 33, 0.02, 23);
  ApplyOptions options;
  options.shards = 4;
  options.threads = 2;
  options.window = 16;

  StateStore whole(small_config(), 33, options);
  whole.apply_batch(lines);

  // The same pipeline fed in ragged chunks (sizes that never align with
  // the window) must land on the same bytes: a batch boundary is not a
  // semantic boundary.
  StateStore chunked(small_config(), 33, options);
  std::span<const IngestLine> rest(lines);
  std::size_t chunk = 1;
  while (!rest.empty()) {
    const std::size_t take = std::min(chunk, rest.size());
    chunked.apply_batch(rest.subspan(0, take));
    rest = rest.subspan(take);
    chunk = chunk * 2 + 1;
  }
  EXPECT_EQ(serialized(chunked), serialized(whole));
}

TEST(ServiceShardedStore, OutOfRangeEventsCommitAsMalformedInOrder) {
  auto lines = workload_lines(300, 44);
  // Splice in events the apply path must refuse (node/item out of range)
  // at positions that land mid-window; the scheduler over-claims their
  // shard where it can, and the commit must count them malformed exactly
  // where the sequential path does.
  lines.insert(lines.begin() + 5, {false, {Event::Kind::contact, 0, 99, 1, 0}});
  lines.insert(lines.begin() + 60, {false, {Event::Kind::request, 0, 1, 0, 99}});
  lines.insert(lines.begin() + 61, {false, {Event::Kind::crash, 0, 99, 0, 0}});
  lines.insert(lines.begin() + 200, {false, {Event::Kind::contact, 0, 3, 3, 0}});

  StateStore reference(small_config(), 44);
  apply_per_line(reference, lines);

  ApplyOptions options;
  options.shards = 8;
  options.threads = 4;
  options.window = 32;
  StateStore store(small_config(), 44, options);
  store.apply_batch(lines);

  EXPECT_EQ(serialized(store), serialized(reference));
  EXPECT_GT(store.counters().events_malformed, 0u);
}

TEST(ServiceShardedStore, SnapshotCutMidStreamRestoresByteIdentically) {
  const auto lines = workload_lines(1200, 55, 0.01, 31);
  StateStore reference(small_config(), 55);
  apply_per_line(reference, lines);
  const std::string want = serialized(reference);

  for (const std::size_t cut : {std::size_t{1}, lines.size() / 3,
                                lines.size() - 1}) {
    // First leg runs sharded, then the image round-trips through the
    // serializer (a snapshot + SIGKILL + --restore in miniature) into a
    // store with DIFFERENT pipeline geometry for the second leg.
    ApplyOptions first;
    first.shards = 8;
    first.threads = 4;
    first.window = 64;
    StateStore store(small_config(), 55, first);
    store.apply_batch(std::span<const IngestLine>(lines).subspan(0, cut));

    std::ostringstream snap;
    write_image(snap, store.image());
    std::istringstream in(snap.str());
    const StateImage restored = read_image(in);

    ApplyOptions second;
    second.shards = 2;
    second.threads = 2;
    second.window = 5;
    StateStore resumed(small_config(), 55, restored, second);
    resumed.apply_batch(std::span<const IngestLine>(lines).subspan(cut));
    EXPECT_EQ(serialized(resumed), want) << "cut=" << cut;
  }
}

TEST(ServiceShardedStore, ShardsClampToNodeCountAndSingleThreadStaysInline) {
  // More shards than nodes, and a parallel() == false geometry, are both
  // legal; both must match the reference bytes.
  const auto lines = workload_lines(400, 66);
  StateStore reference(small_config(), 66);
  apply_per_line(reference, lines);

  ApplyOptions wide;
  wide.shards = 64;  // > num_nodes: scheduler clamps
  wide.threads = 3;
  wide.window = 50;
  StateStore clamped(small_config(), 66, wide);
  clamped.apply_batch(lines);
  EXPECT_EQ(serialized(clamped), serialized(reference));

  ApplyOptions inline_only;
  inline_only.shards = 8;
  inline_only.threads = 1;  // plan inline, no team
  StateStore single(small_config(), 66, inline_only);
  single.apply_batch(lines);
  EXPECT_EQ(serialized(single), serialized(reference));
}

TEST(ServiceShardedStore, ChaosFeederOverTcpMatchesSequentialUnixRun) {
  // End-to-end transport × pipeline lock: the same stream through (a) a
  // sequential daemon on a Unix socket with no chaos and (b) a sharded
  // daemon on TCP behind the chaos shim must serialize identically.
  TempPath stream("sharded_chaos_stream");
  {
    StreamConfig config;
    config.events = 600;
    config.num_nodes = 16;
    config.num_items = 12;
    config.crash_fraction = 0.01;
    config.quit = false;
    std::ofstream out(stream.path());
    write_stream(out, generate_stream(config, 77));
  }

  std::string images[2];
  for (int variant = 0; variant < 2; ++variant) {
    TempPath socket("sharded_chaos_sock");
    DaemonConfig dconfig;
    dconfig.store = small_config();
    dconfig.seed = 77;
    dconfig.http_port = -1;
    if (variant == 0) {
      dconfig.socket_path = socket.path();
    } else {
      dconfig.tcp_port = 0;  // ephemeral
      dconfig.apply.shards = 8;
      dconfig.apply.threads = 4;
      dconfig.apply.window = 32;
    }
    ReplicationDaemon daemon(dconfig);
    std::thread runner([&] { daemon.run(nullptr); });

    FeederConfig fconfig;
    if (variant == 0) {
      fconfig.socket_path = socket.path();
    } else {
      fconfig.tcp_port = static_cast<int>(daemon.tcp_port());
      fconfig.chaos.p_reset = 0.02;
      fconfig.chaos.p_partial = 0.02;
      fconfig.chaos.p_garbage = 0.01;
      fconfig.chaos.seed = 5;
    }
    fconfig.input_path = stream.path();
    fconfig.seed = 9;
    const FeederReport report = StreamFeeder(fconfig).run();
    EXPECT_TRUE(report.complete);
    daemon.stop();
    runner.join();
    images[variant] = serialized(daemon.store());
  }
  EXPECT_EQ(images[0], images[1]);
}

}  // namespace
}  // namespace impatience::service
