// Byte-level protocol fuzzing for replicationd's socket ingest — both
// Unix-domain and TCP transports share the framing rules (suite
// ReplicationdFuzz; swept under ThreadSanitizer by
// scripts/check_engine_tsan.sh). Seeded mutations — truncations, splices,
// duplicated chunks, interleaved garbage (newlines included) — are
// streamed at the daemon, which must never throw, never double-apply,
// and account for every rejected frame: its seq / malformed / hello /
// fragment counters are checked against an independent reference
// tokenizer that models the framing rules directly.
#include <gtest/gtest.h>
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "impatience/service/daemon.hpp"
#include "impatience/service/protocol.hpp"
#include "impatience/util/rng.hpp"

namespace impatience::service {
namespace {

StoreConfig small_config() {
  StoreConfig config;
  config.num_nodes = 16;
  config.num_items = 12;
  config.cache_capacity = 3;
  return config;
}

class TempPath {
 public:
  explicit TempPath(const char* stem) {
    path_ = ::testing::TempDir() + stem + "_" +
            std::to_string(::getpid()) + "_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this));
  }
  ~TempPath() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Best-effort raw send over a connected fd: the daemon may quit (a
/// fuzzed 'Q' line) while bytes are still in flight, so EPIPE just ends
/// the feed.
void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  ::close(fd);
}

void feed_bytes(const std::string& socket_path, const std::string& data) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  int connected = -1;
  for (int i = 0; i < 100 && connected < 0; ++i) {
    connected =
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (connected < 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  if (connected < 0) {
    ::close(fd);
    return;
  }
  send_all(fd, data);
}

/// TCP twin of feed_bytes, for the --tcp ingest endpoint.
void feed_bytes_tcp(std::uint16_t port, const std::string& data) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  int connected = -1;
  for (int i = 0; i < 100 && connected < 0; ++i) {
    connected =
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (connected < 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  if (connected < 0) {
    ::close(fd);
    return;
  }
  send_all(fd, data);
}

/// What the daemon must account for a byte stream fed over a sequence of
/// connections.
struct ExpectedIngest {
  std::uint64_t seq = 0;        ///< countable lines applied
  std::uint64_t malformed = 0;  ///< of which unparseable
  std::uint64_t hellos = 0;
  std::uint64_t frames_partial = 0;
  std::uint64_t frames_partial_discarded = 0;
  bool quit = false;         ///< a Q line ended the stream
  std::size_t quit_conn = 0; ///< index of the connection carrying the Q
};

/// Independent reference tokenizer: replays the daemon's framing rules
/// (hold fragment at disconnect; next connection's first complete line
/// decides glue-vs-discard; processing stops at the first Q) over the
/// exact bytes of each connection.
ExpectedIngest reference_ingest(const std::vector<std::string>& conns) {
  ExpectedIngest expected;
  std::string fragment;
  for (std::size_t ci = 0; ci < conns.size(); ++ci) {
    if (expected.quit) break;
    expected.quit_conn = ci;
    std::string buffer = conns[ci];
    bool deciding = !fragment.empty();
    std::size_t pos = 0;
    for (;;) {
      const std::size_t nl = buffer.find('\n', pos);
      if (nl == std::string::npos) break;
      std::string line = buffer.substr(pos, nl - pos);
      pos = nl + 1;
      if (deciding) {
        deciding = false;
        if (classify_line(line) == LineClass::hello) {
          fragment.clear();
          ++expected.frames_partial_discarded;
        } else {
          line = fragment + line;
          fragment.clear();
        }
      }
      const LineClass cls = classify_line(line);
      if (cls == LineClass::noise) continue;
      if (cls == LineClass::hello) {
        ++expected.hellos;
        continue;
      }
      if (cls == LineClass::quit) {
        expected.quit = true;
        break;
      }
      ++expected.seq;
      if (cls == LineClass::malformed) ++expected.malformed;
    }
    if (expected.quit) break;
    if (pos < buffer.size()) {
      fragment += buffer.substr(pos);
      ++expected.frames_partial;
    }
  }
  return expected;
}

/// Transport under fuzz: the framing rules (and hence the reference
/// tokenizer) are transport-agnostic, so the same checks run over both.
enum class Transport { unix_socket, tcp };

/// Runs the daemon over the connection blobs and checks every counter
/// against the reference tokenizer.
void run_and_check(const std::vector<std::string>& conns,
                   std::uint64_t seed, const char* what,
                   Transport transport = Transport::unix_socket) {
  const ExpectedIngest expected = reference_ingest(conns);
  TempPath socket("repl_fuzz_sock");
  DaemonConfig config;
  config.store = small_config();
  config.seed = seed;
  if (transport == Transport::unix_socket) {
    config.socket_path = socket.path();
  } else {
    config.tcp_port = 0;  // ephemeral; exercise the sharded pipeline too
    config.apply.shards = 4;
    config.apply.threads = 2;
    config.apply.window = 16;
  }
  config.http_port = -1;
  ReplicationDaemon daemon(config);
  std::thread runner([&] {
    // The contract under fuzz: ingest never throws.
    EXPECT_NO_THROW(daemon.run(nullptr)) << what;
  });
  for (std::size_t ci = 0; ci < conns.size(); ++ci) {
    if (transport == Transport::unix_socket) {
      feed_bytes(socket.path(), conns[ci]);
    } else {
      feed_bytes_tcp(daemon.tcp_port(), conns[ci]);
    }
    // Connections past the quit-carrying one may never be accepted.
    if (expected.quit && ci >= expected.quit_conn) break;
  }
  if (!expected.quit) {
    // No Q reached the daemon: wait (bounded) for the stream to be fully
    // accounted, then stop the run.
    for (int i = 0; i < 2500 && daemon.store().seq() < expected.seq; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    daemon.stop();
  }
  runner.join();

  const StoreCounters k = daemon.store().counters();
  EXPECT_EQ(daemon.store().seq(), expected.seq) << what;
  EXPECT_EQ(k.events_applied, expected.seq) << what;  // never double-applied
  EXPECT_EQ(k.events_malformed, expected.malformed) << what;
  EXPECT_EQ(daemon.ingest().hellos.load(), expected.hellos) << what;
  // The quit on the final connection means every disconnect-held
  // fragment was already accounted when the run ended.
  EXPECT_EQ(daemon.ingest().frames_partial.load(), expected.frames_partial)
      << what;
  EXPECT_EQ(daemon.ingest().frames_partial_discarded.load(),
            expected.frames_partial_discarded)
      << what;
}

std::string clean_stream(std::uint64_t events, std::uint64_t seed) {
  StreamConfig config;
  config.events = events;
  config.num_nodes = 16;
  config.num_items = 12;
  config.quit = false;
  std::ostringstream out;
  write_stream(out, generate_stream(config, seed));
  return out.str();
}

TEST(ReplicationdFuzz, TruncatedStreamsNeverThrowAndAccountExactly) {
  util::Rng rng(2024);
  const std::string base = clean_stream(120, 7);
  for (int round = 0; round < 8; ++round) {
    const std::size_t cut = rng.uniform_index(base.size());
    // Truncated stream, then a terminating Q on the same connection.
    run_and_check({base.substr(0, cut) + "\nQ\n"}, 100 + round,
                  "truncation");
  }
}

TEST(ReplicationdFuzz, SplicedAndGarbledStreamsAccountExactly) {
  util::Rng rng(4048);
  const std::string a = clean_stream(100, 11);
  const std::string b = clean_stream(100, 13);
  const char garbage_alphabet[] = "\nQX \t#HC R0123456789\x01\x7f;";
  for (int round = 0; round < 8; ++round) {
    // Splice two streams at random byte offsets (tearing lines), then
    // interleave a burst of garbage that may itself contain newlines,
    // 'Q' and 'H' bytes — the oracle models whatever lines result.
    std::string mutated = a.substr(0, rng.uniform_index(a.size())) +
                          b.substr(rng.uniform_index(b.size()));
    std::string burst;
    const std::size_t len = 1 + rng.uniform_index(40);
    for (std::size_t i = 0; i < len; ++i) {
      burst += garbage_alphabet[rng.uniform_index(
          sizeof(garbage_alphabet) - 1)];
    }
    mutated.insert(rng.uniform_index(mutated.size()), burst);
    run_and_check({mutated + "\nQ\n"}, 200 + round, "splice+garbage");
  }
}

TEST(ReplicationdFuzz, MultiConnectionCutsWithAndWithoutHandshake) {
  util::Rng rng(9090);
  const std::string base = clean_stream(150, 17);
  for (int round = 0; round < 6; ++round) {
    // Cut the stream at two random bytes into three connections; the
    // middle one may open with a handshake (discarding the held cut
    // fragment) or not (gluing it).
    std::size_t c1 = rng.uniform_index(base.size());
    std::size_t c2 = rng.uniform_index(base.size());
    if (c1 > c2) std::swap(c1, c2);
    const bool handshake = rng.bernoulli(0.5);
    std::vector<std::string> conns;
    conns.push_back(base.substr(0, c1));
    conns.push_back((handshake ? std::string("H\n") : std::string()) +
                    base.substr(c1, c2 - c1));
    conns.push_back(base.substr(c2) + "\nQ\n");
    run_and_check(conns, 300 + round,
                  handshake ? "3-way cut + handshake" : "3-way cut");
  }
}

TEST(ReplicationdFuzz, DuplicatedChunksAreAppliedAsSent) {
  util::Rng rng(5150);
  const std::string base = clean_stream(80, 19);
  for (int round = 0; round < 4; ++round) {
    // A duplicated byte range models a feeder resending too much: the
    // daemon applies what arrives (duplicate frames are the feeder's
    // cursor bug, not the daemon's) but must still account exactly.
    std::size_t from = rng.uniform_index(base.size());
    std::size_t to = rng.uniform_index(base.size());
    if (from > to) std::swap(from, to);
    std::string mutated = base;
    mutated.insert(to, base.substr(from, to - from));
    run_and_check({mutated + "\nQ\n"}, 400 + round, "duplicated chunk");
  }
}

TEST(ReplicationdFuzz, TcpTruncatedStreamsAccountExactly) {
  util::Rng rng(6006);
  const std::string base = clean_stream(120, 23);
  for (int round = 0; round < 6; ++round) {
    const std::size_t cut = rng.uniform_index(base.size());
    run_and_check({base.substr(0, cut) + "\nQ\n"}, 500 + round,
                  "tcp truncation", Transport::tcp);
  }
}

TEST(ReplicationdFuzz, TcpMultiConnectionCutsAccountExactly) {
  util::Rng rng(7007);
  const std::string base = clean_stream(150, 29);
  for (int round = 0; round < 4; ++round) {
    std::size_t c1 = rng.uniform_index(base.size());
    std::size_t c2 = rng.uniform_index(base.size());
    if (c1 > c2) std::swap(c1, c2);
    const bool handshake = rng.bernoulli(0.5);
    std::vector<std::string> conns;
    conns.push_back(base.substr(0, c1));
    conns.push_back((handshake ? std::string("H\n") : std::string()) +
                    base.substr(c1, c2 - c1));
    conns.push_back(base.substr(c2) + "\nQ\n");
    run_and_check(conns, 600 + round, "tcp 3-way cut", Transport::tcp);
  }
}

}  // namespace
}  // namespace impatience::service
