// Daemon integration tests. The suite name (Replicationd) is load-bearing:
// scripts/check_engine_tsan.sh sweeps `-R "^(Simulator|Replicationd)\."`
// so the ingest/monitor/snapshot threads run under ThreadSanitizer.
#include "impatience/service/daemon.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include "impatience/service/http.hpp"
#include "impatience/service/protocol.hpp"
#include "impatience/util/errors.hpp"

namespace impatience::service {
namespace {

StoreConfig small_config() {
  StoreConfig config;
  config.num_nodes = 16;
  config.num_items = 12;
  config.cache_capacity = 3;
  return config;
}

std::string stream_text(std::uint64_t events, std::uint64_t seed,
                        bool quit) {
  StreamConfig config;
  config.events = events;
  config.num_nodes = 16;
  config.num_items = 12;
  config.quit = quit;
  std::ostringstream out;
  write_stream(out, generate_stream(config, seed));
  return out.str();
}

class TempPath {
 public:
  explicit TempPath(const char* stem) {
    path_ = ::testing::TempDir() + stem + "_" +
            std::to_string(::getpid()) + "_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this));
  }
  ~TempPath() {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Feeds raw bytes into a Unix-domain socket, like a live event source.
void feed_socket(const std::string& socket_path, const std::string& data) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  // The daemon binds the socket in its constructor, so connect() succeeds
  // immediately; retry briefly anyway to absorb scheduler noise.
  int connected = -1;
  for (int i = 0; i < 100 && connected < 0; ++i) {
    connected =
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (connected < 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  ASSERT_EQ(connected, 0) << "cannot connect to " << socket_path;
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, 0);
    ASSERT_GT(n, 0);
    off += static_cast<std::size_t>(n);
  }
  ::close(fd);
}

/// Opens a raw connection to the daemon's socket (retrying connect).
int connect_socket(const std::string& socket_path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  int connected = -1;
  for (int i = 0; i < 100 && connected < 0; ++i) {
    connected =
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (connected < 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_EQ(connected, 0) << "cannot connect to " << socket_path;
  return fd;
}

void send_raw(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, 0);
    ASSERT_GT(n, 0);
    off += static_cast<std::size_t>(n);
  }
}

/// Reads one newline-terminated line (without the newline), with timeout.
std::string recv_line(int fd, double timeout_s = 5.0) {
  std::string buffer;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  while (std::chrono::steady_clock::now() < deadline) {
    const std::size_t nl = buffer.find('\n');
    if (nl != std::string::npos) return buffer.substr(0, nl);
    char buf[256];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
    if (n > 0) {
      buffer.append(buf, static_cast<std::size_t>(n));
    } else if (n == 0) {
      break;
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  return buffer;
}

void wait_for_seq(const ReplicationDaemon& daemon, std::uint64_t seq) {
  for (int i = 0; i < 1000 && daemon.store().seq() < seq; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_GE(daemon.store().seq(), seq);
}

// Ingest counters lag the store seq: a fragment is registered when the
// ingest thread processes the connection EOF, which can land after the
// last complete line was applied. Poll instead of asserting instantly.
void wait_for_counter(const std::atomic<std::uint64_t>& counter,
                      std::uint64_t expected) {
  for (int i = 0; i < 1000 && counter.load() < expected; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(counter.load(), expected);
}

TEST(Replicationd, HelloHandshakeAnswersSeqCursor) {
  TempPath socket("repl_hello");
  DaemonConfig config;
  config.store = small_config();
  config.seed = 31;
  config.socket_path = socket.path();
  config.http_port = 0;
  ReplicationDaemon daemon(config);
  std::thread runner([&] { daemon.run(nullptr); });

  const int fd = connect_socket(socket.path());
  send_raw(fd, "H\n");
  EXPECT_EQ(recv_line(fd), "S 0");  // fresh store: cursor at zero
  send_raw(fd, "C 1 2\nnonsense\nR 3 5\nH\n");
  // Malformed lines occupy a seq slot too — the cursor is a count of
  // countable lines, exactly what a resuming feeder must skip.
  EXPECT_EQ(recv_line(fd), "S 3");
  ::close(fd);

  wait_for_seq(daemon, 3);
  EXPECT_EQ(daemon.ingest().hellos.load(), 2u);
  EXPECT_EQ(daemon.ingest().connections.load(), 1u);
  const std::string metrics = http_get(daemon.http_port(), "/metrics");
  EXPECT_NE(metrics.find("replicationd_ingest_hellos_total 2\n"),
            std::string::npos);
  EXPECT_NE(metrics.find("replicationd_ingest_connections_total 1\n"),
            std::string::npos);
  daemon.stop();
  runner.join();
}

TEST(Replicationd, PartialLineIsHeldAndCompletedByNextConnection) {
  TempPath socket("repl_partial_hold");
  DaemonConfig config;
  config.store = small_config();
  config.seed = 32;
  config.socket_path = socket.path();
  config.http_port = -1;
  ReplicationDaemon daemon(config);
  std::thread runner([&] { daemon.run(nullptr); });

  // Connection 1 dies mid-frame: "R 3" is an unterminated fragment. The
  // old behavior flushed it as a line (a spurious malformed event); now
  // it must be held.
  feed_socket(socket.path(), "C 1 2\nR 3");
  wait_for_seq(daemon, 1);
  EXPECT_EQ(daemon.store().seq(), 1u);
  wait_for_counter(daemon.ingest().frames_partial, 1u);

  // Connection 2 (a dumb continuation feeder, no handshake) completes
  // the cut frame exactly where it left off.
  feed_socket(socket.path(), " 5\nQ\n");
  runner.join();
  const StoreCounters k = daemon.store().counters();
  EXPECT_EQ(daemon.store().seq(), 2u);
  EXPECT_EQ(k.events_malformed, 0u);
  EXPECT_EQ(k.requests_created, 1u);  // "R 3 5" was reassembled
  EXPECT_EQ(daemon.ingest().frames_partial_discarded.load(), 0u);
}

TEST(Replicationd, HeldFragmentIsDiscardedWhenNextConnectionHandshakes) {
  TempPath socket("repl_partial_drop");
  DaemonConfig config;
  config.store = small_config();
  config.seed = 33;
  config.socket_path = socket.path();
  config.http_port = -1;
  ReplicationDaemon daemon(config);
  std::thread runner([&] { daemon.run(nullptr); });

  feed_socket(socket.path(), "C 1 2\nR 3");
  wait_for_seq(daemon, 1);

  // A resuming feeder opens with H: it will re-send the cut frame
  // itself, so gluing its bytes onto the fragment would corrupt the
  // stream — the fragment must be dropped instead.
  const int fd = connect_socket(socket.path());
  send_raw(fd, "H\n");
  EXPECT_EQ(recv_line(fd), "S 1");
  send_raw(fd, "R 3 5\nQ\n");
  ::close(fd);
  runner.join();

  const StoreCounters k = daemon.store().counters();
  EXPECT_EQ(daemon.store().seq(), 2u);
  EXPECT_EQ(k.events_malformed, 0u);
  EXPECT_EQ(k.requests_created, 1u);
  EXPECT_EQ(daemon.ingest().frames_partial.load(), 1u);
  EXPECT_EQ(daemon.ingest().frames_partial_discarded.load(), 1u);
}

TEST(Replicationd, BoundedIngestBufferCountsBackpressure) {
  TempPath socket("repl_backpressure");
  DaemonConfig config;
  config.store = small_config();
  config.seed = 34;
  config.socket_path = socket.path();
  config.http_port = -1;
  config.ingest_buffer_bytes = 1;  // clamped up to the 4096 floor
  ReplicationDaemon daemon(config);

  // Queue well over the buffer cap in the kernel socket buffer *before*
  // the ingest loop starts reading: the first greedy drain must stop at
  // the cap and the lines served while capped count as deferred.
  feed_socket(socket.path(), stream_text(2000, 35, /*quit=*/true));
  daemon.run(nullptr);

  EXPECT_GE(daemon.ingest().buffer_high_water.load(), 4096u);
  EXPECT_GT(daemon.ingest().events_deferred.load(), 0u);
  EXPECT_GT(daemon.store().seq(), 1000u);  // the stream still all applied
}

TEST(Replicationd, IngestsSocketStreamAndServesMetrics) {
  TempPath socket("repl_sock");
  DaemonConfig config;
  config.store = small_config();
  config.seed = 21;
  config.socket_path = socket.path();
  config.http_port = 0;  // ephemeral

  ReplicationDaemon daemon(config);
  ASSERT_NE(daemon.http_port(), 0);

  std::thread feeder([&] {
    feed_socket(socket.path(), stream_text(1000, 31, /*quit=*/true));
  });
  daemon.run(nullptr);  // Q frame ends the stream
  feeder.join();

  const StoreCounters k = daemon.store().counters();
  EXPECT_GT(k.events_applied, 1000u);  // T frames ride along
  EXPECT_GT(k.requests_served(), 0u);
  EXPECT_TRUE(daemon.store().mandate_conservation_ok());

  // Scrape while the monitor thread is still up.
  const std::string metrics = http_get(daemon.http_port(), "/metrics");
  EXPECT_NE(metrics.find("replicationd_events_total " +
                         std::to_string(k.events_applied)),
            std::string::npos);
  EXPECT_NE(metrics.find("replicationd_mandate_conservation_ok 1"),
            std::string::npos);
  EXPECT_NE(metrics.find("replicationd_apply_latency_us_p99"),
            std::string::npos);
  EXPECT_EQ(http_get(daemon.http_port(), "/healthz"), "ok\n");
  EXPECT_THROW(http_get(daemon.http_port(), "/nope"), util::IoError);
}

TEST(Replicationd, ConcurrentScrapesDuringIngestAreClean) {
  TempPath socket("repl_scrape");
  DaemonConfig config;
  config.store = small_config();
  config.seed = 22;
  config.socket_path = socket.path();
  config.http_port = 0;

  ReplicationDaemon daemon(config);
  std::thread feeder([&] {
    feed_socket(socket.path(), stream_text(3000, 32, /*quit=*/true));
  });
  // Hammer /metrics from two clients while the ingest thread applies
  // events — the TSan sweep turns any store/metrics race into a failure.
  std::atomic<bool> done{false};
  std::thread scraper([&] {
    while (!done.load()) {
      const std::string body = http_get(daemon.http_port(), "/metrics");
      EXPECT_NE(body.find("replicationd_version"), std::string::npos);
    }
  });
  daemon.run(nullptr);
  done.store(true);
  scraper.join();
  feeder.join();
  EXPECT_TRUE(daemon.store().mandate_conservation_ok());
}

TEST(Replicationd, ShutdownTokenStopsGracefullyWithFinalSnapshot) {
  TempPath socket("repl_shutdown");
  TempPath snap("repl_shutdown_snap");
  DaemonConfig config;
  config.store = small_config();
  config.seed = 23;
  config.socket_path = socket.path();
  config.http_port = -1;
  config.snapshot_path = snap.path();

  ReplicationDaemon daemon(config);
  util::CancellationToken token;
  std::thread runner([&] {
    // SIGTERM path: shutdown reason, run() returns normally.
    EXPECT_NO_THROW(daemon.run(&token));
  });
  feed_socket(socket.path(), stream_text(500, 33, /*quit=*/false));
  while (daemon.store().counters().events_applied == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  token.cancel(util::CancelReason::shutdown);
  runner.join();

  // The graceful stop persisted a final snapshot matching the store.
  const StateImage image = load_image(snap.path());
  EXPECT_EQ(image.seq, daemon.store().seq());
  EXPECT_EQ(image.version, daemon.store().version());
}

TEST(Replicationd, DeadlineTokenSurfacesAsCancelledError) {
  TempPath socket("repl_deadline");
  DaemonConfig config;
  config.store = small_config();
  config.seed = 24;
  config.socket_path = socket.path();
  config.http_port = -1;

  ReplicationDaemon daemon(config);
  util::CancellationToken token;
  token.cancel(util::CancelReason::deadline);
  try {
    daemon.run(&token);
    FAIL() << "expected CancelledError";
  } catch (const util::CancelledError& e) {
    EXPECT_EQ(e.reason(), util::CancelReason::deadline);
  }
}

TEST(Replicationd, SnapshotEveryNEventsIsDeterministicallyReplayable) {
  const std::string text = stream_text(600, 34, /*quit=*/false);

  // Uninterrupted reference over a file source.
  TempPath input("repl_input");
  {
    std::ofstream out(input.path());
    out << text;
  }
  TempPath ref_snap("repl_ref_snap");
  DaemonConfig ref;
  ref.store = small_config();
  ref.seed = 25;
  ref.socket_path.clear();
  ref.input_path = input.path();
  ref.http_port = -1;
  ref.snapshot_path = ref_snap.path();
  ReplicationDaemon ref_daemon(ref);
  ref_daemon.run(nullptr);
  const std::uint64_t total_events = ref_daemon.store().seq();

  // Same stream with --snapshot-every; the last by-seq snapshot plus the
  // final graceful one must both exist; the final must match the
  // reference byte-for-byte.
  TempPath every_snap("repl_every_snap");
  DaemonConfig every = ref;
  every.snapshot_path = every_snap.path();
  every.snapshot_every = 250;
  ReplicationDaemon every_daemon(every);
  every_daemon.run(nullptr);
  EXPECT_EQ(every_daemon.store().seq(), total_events);
  EXPECT_GE(every_daemon.metrics().snapshots_total(), 3u);  // 2 by-seq + final

  std::ostringstream a, b;
  write_image(a, load_image(ref_snap.path()));
  write_image(b, load_image(every_snap.path()));
  EXPECT_EQ(a.str(), b.str());
}

TEST(Replicationd, MalformedLinesAreCountedNotFatal) {
  TempPath input("repl_bad_input");
  {
    std::ofstream out(input.path());
    out << "# comment\n\nC 1 2\nnonsense here\nC 1 1\nR 3 5\nQ\n";
  }
  DaemonConfig config;
  config.store = small_config();
  config.seed = 26;
  config.input_path = input.path();
  config.http_port = -1;
  ReplicationDaemon daemon(config);
  daemon.run(nullptr);
  const StoreCounters k = daemon.store().counters();
  // "nonsense here" and the self-contact "C 1 1" are malformed (counted,
  // state untouched) but still occupy a seq slot each — the seq cursor
  // counts every countable line so the H/S resume protocol is exact.
  // Comments/blanks are noise; Q ends the stream unapplied.
  EXPECT_EQ(k.events_malformed, 2u);
  EXPECT_EQ(k.events_applied, 4u);  // C 1 2, nonsense, C 1 1, R 3 5
  EXPECT_EQ(daemon.store().seq(), 4u);
}

TEST(Replicationd, HttpSnapshotEndpointTriggersPersistence) {
  TempPath socket("repl_httpsnap");
  TempPath snap("repl_httpsnap_file");
  DaemonConfig config;
  config.store = small_config();
  config.seed = 27;
  config.socket_path = socket.path();
  config.http_port = 0;
  config.snapshot_path = snap.path();

  ReplicationDaemon daemon(config);
  std::thread runner([&] { daemon.run(nullptr); });
  feed_socket(socket.path(), stream_text(200, 35, /*quit=*/false));
  while (daemon.store().counters().events_applied == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const std::string body = http_get(daemon.http_port(), "/snapshot");
  EXPECT_EQ(body.rfind("ok version ", 0), 0u) << body;
  EXPECT_GE(daemon.metrics().snapshots_total(), 1u);
  const StateImage image = load_image(snap.path());
  EXPECT_GT(image.seq, 0u);
  daemon.stop();
  runner.join();
}

}  // namespace
}  // namespace impatience::service
