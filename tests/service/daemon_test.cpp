// Daemon integration tests. The suite name (Replicationd) is load-bearing:
// scripts/check_engine_tsan.sh sweeps `-R "^(Simulator|Replicationd)\."`
// so the ingest/monitor/snapshot threads run under ThreadSanitizer.
#include "impatience/service/daemon.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include "impatience/service/http.hpp"
#include "impatience/service/protocol.hpp"
#include "impatience/util/errors.hpp"

namespace impatience::service {
namespace {

StoreConfig small_config() {
  StoreConfig config;
  config.num_nodes = 16;
  config.num_items = 12;
  config.cache_capacity = 3;
  return config;
}

std::string stream_text(std::uint64_t events, std::uint64_t seed,
                        bool quit) {
  StreamConfig config;
  config.events = events;
  config.num_nodes = 16;
  config.num_items = 12;
  config.quit = quit;
  std::ostringstream out;
  write_stream(out, generate_stream(config, seed));
  return out.str();
}

class TempPath {
 public:
  explicit TempPath(const char* stem) {
    path_ = ::testing::TempDir() + stem + "_" +
            std::to_string(::getpid()) + "_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this));
  }
  ~TempPath() {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Feeds raw bytes into a Unix-domain socket, like a live event source.
void feed_socket(const std::string& socket_path, const std::string& data) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  // The daemon binds the socket in its constructor, so connect() succeeds
  // immediately; retry briefly anyway to absorb scheduler noise.
  int connected = -1;
  for (int i = 0; i < 100 && connected < 0; ++i) {
    connected =
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (connected < 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  ASSERT_EQ(connected, 0) << "cannot connect to " << socket_path;
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, 0);
    ASSERT_GT(n, 0);
    off += static_cast<std::size_t>(n);
  }
  ::close(fd);
}

TEST(Replicationd, IngestsSocketStreamAndServesMetrics) {
  TempPath socket("repl_sock");
  DaemonConfig config;
  config.store = small_config();
  config.seed = 21;
  config.socket_path = socket.path();
  config.http_port = 0;  // ephemeral

  ReplicationDaemon daemon(config);
  ASSERT_NE(daemon.http_port(), 0);

  std::thread feeder([&] {
    feed_socket(socket.path(), stream_text(1000, 31, /*quit=*/true));
  });
  daemon.run(nullptr);  // Q frame ends the stream
  feeder.join();

  const StoreCounters k = daemon.store().counters();
  EXPECT_GT(k.events_applied, 1000u);  // T frames ride along
  EXPECT_GT(k.requests_served(), 0u);
  EXPECT_TRUE(daemon.store().mandate_conservation_ok());

  // Scrape while the monitor thread is still up.
  const std::string metrics = http_get(daemon.http_port(), "/metrics");
  EXPECT_NE(metrics.find("replicationd_events_total " +
                         std::to_string(k.events_applied)),
            std::string::npos);
  EXPECT_NE(metrics.find("replicationd_mandate_conservation_ok 1"),
            std::string::npos);
  EXPECT_NE(metrics.find("replicationd_apply_latency_us_p99"),
            std::string::npos);
  EXPECT_EQ(http_get(daemon.http_port(), "/healthz"), "ok\n");
  EXPECT_THROW(http_get(daemon.http_port(), "/nope"), util::IoError);
}

TEST(Replicationd, ConcurrentScrapesDuringIngestAreClean) {
  TempPath socket("repl_scrape");
  DaemonConfig config;
  config.store = small_config();
  config.seed = 22;
  config.socket_path = socket.path();
  config.http_port = 0;

  ReplicationDaemon daemon(config);
  std::thread feeder([&] {
    feed_socket(socket.path(), stream_text(3000, 32, /*quit=*/true));
  });
  // Hammer /metrics from two clients while the ingest thread applies
  // events — the TSan sweep turns any store/metrics race into a failure.
  std::atomic<bool> done{false};
  std::thread scraper([&] {
    while (!done.load()) {
      const std::string body = http_get(daemon.http_port(), "/metrics");
      EXPECT_NE(body.find("replicationd_version"), std::string::npos);
    }
  });
  daemon.run(nullptr);
  done.store(true);
  scraper.join();
  feeder.join();
  EXPECT_TRUE(daemon.store().mandate_conservation_ok());
}

TEST(Replicationd, ShutdownTokenStopsGracefullyWithFinalSnapshot) {
  TempPath socket("repl_shutdown");
  TempPath snap("repl_shutdown_snap");
  DaemonConfig config;
  config.store = small_config();
  config.seed = 23;
  config.socket_path = socket.path();
  config.http_port = -1;
  config.snapshot_path = snap.path();

  ReplicationDaemon daemon(config);
  util::CancellationToken token;
  std::thread runner([&] {
    // SIGTERM path: shutdown reason, run() returns normally.
    EXPECT_NO_THROW(daemon.run(&token));
  });
  feed_socket(socket.path(), stream_text(500, 33, /*quit=*/false));
  while (daemon.store().counters().events_applied == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  token.cancel(util::CancelReason::shutdown);
  runner.join();

  // The graceful stop persisted a final snapshot matching the store.
  const StateImage image = load_image(snap.path());
  EXPECT_EQ(image.seq, daemon.store().seq());
  EXPECT_EQ(image.version, daemon.store().version());
}

TEST(Replicationd, DeadlineTokenSurfacesAsCancelledError) {
  TempPath socket("repl_deadline");
  DaemonConfig config;
  config.store = small_config();
  config.seed = 24;
  config.socket_path = socket.path();
  config.http_port = -1;

  ReplicationDaemon daemon(config);
  util::CancellationToken token;
  token.cancel(util::CancelReason::deadline);
  try {
    daemon.run(&token);
    FAIL() << "expected CancelledError";
  } catch (const util::CancelledError& e) {
    EXPECT_EQ(e.reason(), util::CancelReason::deadline);
  }
}

TEST(Replicationd, SnapshotEveryNEventsIsDeterministicallyReplayable) {
  const std::string text = stream_text(600, 34, /*quit=*/false);

  // Uninterrupted reference over a file source.
  TempPath input("repl_input");
  {
    std::ofstream out(input.path());
    out << text;
  }
  TempPath ref_snap("repl_ref_snap");
  DaemonConfig ref;
  ref.store = small_config();
  ref.seed = 25;
  ref.socket_path.clear();
  ref.input_path = input.path();
  ref.http_port = -1;
  ref.snapshot_path = ref_snap.path();
  ReplicationDaemon ref_daemon(ref);
  ref_daemon.run(nullptr);
  const std::uint64_t total_events = ref_daemon.store().seq();

  // Same stream with --snapshot-every; the last by-seq snapshot plus the
  // final graceful one must both exist; the final must match the
  // reference byte-for-byte.
  TempPath every_snap("repl_every_snap");
  DaemonConfig every = ref;
  every.snapshot_path = every_snap.path();
  every.snapshot_every = 250;
  ReplicationDaemon every_daemon(every);
  every_daemon.run(nullptr);
  EXPECT_EQ(every_daemon.store().seq(), total_events);
  EXPECT_GE(every_daemon.metrics().snapshots_total(), 3u);  // 2 by-seq + final

  std::ostringstream a, b;
  write_image(a, load_image(ref_snap.path()));
  write_image(b, load_image(every_snap.path()));
  EXPECT_EQ(a.str(), b.str());
}

TEST(Replicationd, MalformedLinesAreCountedNotFatal) {
  TempPath input("repl_bad_input");
  {
    std::ofstream out(input.path());
    out << "# comment\n\nC 1 2\nnonsense here\nC 1 1\nR 3 5\nQ\n";
  }
  DaemonConfig config;
  config.store = small_config();
  config.seed = 26;
  config.input_path = input.path();
  config.http_port = -1;
  ReplicationDaemon daemon(config);
  daemon.run(nullptr);
  const StoreCounters k = daemon.store().counters();
  // "nonsense here" and the self-contact "C 1 1" are malformed (counted,
  // skipped); comments/blanks are noise; Q ends the stream unapplied.
  EXPECT_EQ(k.events_malformed, 2u);
  EXPECT_EQ(k.events_applied, 2u);  // C 1 2 and R 3 5
}

TEST(Replicationd, HttpSnapshotEndpointTriggersPersistence) {
  TempPath socket("repl_httpsnap");
  TempPath snap("repl_httpsnap_file");
  DaemonConfig config;
  config.store = small_config();
  config.seed = 27;
  config.socket_path = socket.path();
  config.http_port = 0;
  config.snapshot_path = snap.path();

  ReplicationDaemon daemon(config);
  std::thread runner([&] { daemon.run(nullptr); });
  feed_socket(socket.path(), stream_text(200, 35, /*quit=*/false));
  while (daemon.store().counters().events_applied == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const std::string body = http_get(daemon.http_port(), "/snapshot");
  EXPECT_EQ(body.rfind("ok version ", 0), 0u) << body;
  EXPECT_GE(daemon.metrics().snapshots_total(), 1u);
  const StateImage image = load_image(snap.path());
  EXPECT_GT(image.seq, 0u);
  daemon.stop();
  runner.join();
}

}  // namespace
}  // namespace impatience::service
