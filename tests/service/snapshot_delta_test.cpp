// Delta snapshot and chain tests (suite ServiceSnapshotDelta;
// scripts/check_engine_tsan.sh sweeps it under ThreadSanitizer). Locks
// the incremental persistence contract: base + deltas restore to exactly
// the bytes of a full image, torn / missing / spliced chain elements are
// rejected loudly, the manifest is the only commit point, and the plain
// single-file snapshot path keeps working unchanged.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "impatience/service/snapshot_chain.hpp"
#include "impatience/service/state_store.hpp"
#include "impatience/util/errors.hpp"

namespace impatience::service {
namespace {

StoreConfig small_config() {
  StoreConfig config;
  config.num_nodes = 16;
  config.num_items = 12;
  config.cache_capacity = 3;
  return config;
}

std::vector<Event> workload(std::uint64_t events, std::uint64_t seed,
                            double crash_fraction = 0.0) {
  StreamConfig config;
  config.events = events;
  config.num_nodes = 16;
  config.num_items = 12;
  config.crash_fraction = crash_fraction;
  config.quit = false;
  return generate_stream(config, seed);
}

std::string serialized_image(const StateImage& image) {
  std::ostringstream out;
  write_image(out, image);
  return out.str();
}

std::string serialized(const StateStore& store) {
  return serialized_image(store.image());
}

/// Chain root inside the gtest temp dir, cleaned up with its manifest,
/// bases and deltas (seq suffixes are enumerated by prefix scan).
class TempChain {
 public:
  explicit TempChain(const char* stem) {
    path_ = ::testing::TempDir() + stem + "_" +
            std::to_string(::getpid()) + "_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this));
  }
  ~TempChain() {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
    std::remove((path_ + ".manifest").c_str());
    std::remove((path_ + ".manifest.tmp").c_str());
    for (const std::string& file : created_) std::remove(file.c_str());
  }
  const std::string& path() const { return path_; }
  /// Registers a chain data file for cleanup.
  std::string file(const char* kind, std::uint64_t seq) {
    std::string f = path_ + "." + kind + "." + std::to_string(seq);
    created_.push_back(f);
    return f;
  }
  void track(const std::string& file) { created_.push_back(file); }

 private:
  std::string path_;
  std::vector<std::string> created_;
};

/// Every data file the manifest references, tracked for cleanup.
void track_manifest_files(TempChain& chain) {
  std::ifstream in(chain.path() + ".manifest");
  std::string line;
  const std::string dir =
      chain.path().substr(0, chain.path().find_last_of('/') + 1);
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string kind, file;
    if (fields >> kind >> file && (kind == "base" || kind == "delta")) {
      chain.track(dir + file);
    }
  }
}

TEST(ServiceSnapshotDelta, DeltaRoundTripsThroughTheSerializer) {
  StateStore store(small_config(), 3);
  for (const Event& event : workload(200, 4)) store.apply(event);
  store.checkpoint_image();  // reset dirty tracking
  for (const Event& event : workload(50, 5)) store.apply(event);
  EXPECT_GT(store.dirty_node_count(), 0u);

  StateDelta delta = store.take_delta();
  delta.parent_checksum = 12345;
  EXPECT_EQ(store.dirty_node_count(), 0u);
  EXPECT_FALSE(delta.nodes.empty());

  std::ostringstream out;
  const std::uint64_t checksum = write_delta(out, delta);
  std::istringstream in(out.str());
  std::uint64_t read_checksum = 0;
  const StateDelta back = read_delta(in, &read_checksum);
  EXPECT_EQ(read_checksum, checksum);
  EXPECT_EQ(back.parent_checksum, 12345u);
  EXPECT_EQ(back.seq, delta.seq);
  EXPECT_EQ(back.nodes.size(), delta.nodes.size());

  std::ostringstream again;
  EXPECT_EQ(write_delta(again, back), checksum);
  EXPECT_EQ(again.str(), out.str());
}

TEST(ServiceSnapshotDelta, ApplyDeltaReconstructsTheFullImage) {
  StateStore store(small_config(), 7);
  for (const Event& event : workload(300, 8)) store.apply(event);
  const StateImage base = store.checkpoint_image();
  for (const Event& event : workload(120, 9, 0.02)) store.apply(event);
  const StateImage want = store.image();
  const StateDelta delta = store.take_delta();

  StateImage rebuilt = base;
  apply_delta(rebuilt, delta);
  EXPECT_EQ(serialized_image(rebuilt), serialized_image(want));
}

TEST(ServiceSnapshotDelta, ApplyDeltaRejectsMismatchedProvenance) {
  StateStore store(small_config(), 11);
  for (const Event& event : workload(100, 12)) store.apply(event);
  const StateImage base = store.checkpoint_image();
  for (const Event& event : workload(40, 13)) store.apply(event);
  const StateDelta delta = store.take_delta();

  {  // wrong seed
    StateImage image = base;
    image.seed = 999;
    EXPECT_THROW(apply_delta(image, delta), util::IoError);
  }
  {  // seq regression: delta older than the image
    StateImage image = base;
    image.seq = delta.seq + 1;
    EXPECT_THROW(apply_delta(image, delta), util::IoError);
  }
  {  // config mismatch
    StateImage image = base;
    image.config.num_nodes = 17;
    EXPECT_THROW(apply_delta(image, delta), util::IoError);
  }
  {  // node id out of the image's range
    StateImage image = base;
    StateDelta bad = delta;
    bad.nodes.front().first = 99;
    EXPECT_THROW(apply_delta(image, bad), util::IoError);
  }
}

TEST(ServiceSnapshotDelta, ChainRestoresExactlyAcrossCheckpoints) {
  TempChain chain("snapdelta_chain");
  StateStore store(small_config(), 21);
  SnapshotChain writer({chain.path(), 16});

  const auto events = workload(1000, 22, 0.01);
  std::size_t at = 0;
  for (const std::size_t checkpoint : {std::size_t{0}, std::size_t{250},
                                       std::size_t{500}, std::size_t{750},
                                       events.size()}) {
    for (; at < checkpoint; ++at) store.apply(events[at]);
    writer.snapshot(store);
    track_manifest_files(chain);

    ASSERT_TRUE(SnapshotChain::chain_available(chain.path()));
    const StateImage restored = SnapshotChain::restore_image(chain.path());
    EXPECT_EQ(serialized_image(restored), serialized(store))
        << "checkpoint at " << checkpoint;
  }
  EXPECT_EQ(writer.chain_length(), 5u);  // one base + four deltas
  EXPECT_EQ(writer.deltas_since_base(), 4u);
}

TEST(ServiceSnapshotDelta, CheckpointAtUnchangedSeqIsSkipped) {
  TempChain chain("snapdelta_skip");
  StateStore store(small_config(), 31);
  for (const Event& event : workload(80, 32)) store.apply(event);
  SnapshotChain writer({chain.path(), 16});
  const std::uint64_t seq = writer.snapshot(store);
  track_manifest_files(chain);
  EXPECT_EQ(writer.snapshot(store), seq);  // no new element
  EXPECT_EQ(writer.chain_length(), 1u);
}

TEST(ServiceSnapshotDelta, DeltaLimitCollapsesIntoAFreshBase) {
  TempChain chain("snapdelta_limit");
  StateStore store(small_config(), 41);
  SnapshotChain writer({chain.path(), 2});
  const auto events = workload(600, 42);
  std::size_t at = 0;
  for (int checkpoint = 1; checkpoint <= 5; ++checkpoint) {
    for (; at < static_cast<std::size_t>(checkpoint) * 100; ++at) {
      store.apply(events[at]);
    }
    writer.snapshot(store);
    track_manifest_files(chain);
    EXPECT_LE(writer.deltas_since_base(), 2u);
  }
  // base, +d, +d, collapse to base, +d
  EXPECT_EQ(writer.chain_length(), 2u);
  const StateImage restored = SnapshotChain::restore_image(chain.path());
  EXPECT_EQ(serialized_image(restored), serialized(store));
}

TEST(ServiceSnapshotDelta, FinalizeCollapsesToASingleBase) {
  TempChain chain("snapdelta_final");
  StateStore store(small_config(), 51);
  SnapshotChain writer({chain.path(), 16});
  const auto events = workload(400, 52);
  for (std::size_t i = 0; i < events.size(); ++i) {
    store.apply(events[i]);
    if (i % 100 == 99) {
      writer.snapshot(store);
      track_manifest_files(chain);
    }
  }
  writer.finalize(store);
  track_manifest_files(chain);
  EXPECT_EQ(writer.chain_length(), 1u);
  EXPECT_EQ(writer.deltas_since_base(), 0u);
  const StateImage restored = SnapshotChain::restore_image(chain.path());
  EXPECT_EQ(serialized_image(restored), serialized(store));
}

TEST(ServiceSnapshotDelta, TornDeltaFileIsRejected) {
  TempChain chain("snapdelta_torn");
  StateStore store(small_config(), 61);
  SnapshotChain writer({chain.path(), 16});
  const auto events = workload(300, 62);
  for (std::size_t i = 0; i < events.size() / 2; ++i) store.apply(events[i]);
  writer.snapshot(store);  // base
  for (std::size_t i = events.size() / 2; i < events.size(); ++i) {
    store.apply(events[i]);
  }
  const std::uint64_t delta_seq = writer.snapshot(store);
  track_manifest_files(chain);
  ASSERT_EQ(writer.deltas_since_base(), 1u);

  // Flip one byte inside the newest delta's body: the checksum must
  // catch it, and restore must throw rather than half-load.
  const std::string delta_path =
      chain.path() + ".delta." + std::to_string(delta_seq);
  std::string bytes;
  {
    std::ifstream in(delta_path, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }
  bytes[bytes.size() / 2] ^= 0x20;
  {
    std::ofstream out(delta_path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  EXPECT_THROW(SnapshotChain::restore_image(chain.path()), util::IoError);
}

TEST(ServiceSnapshotDelta, MissingDeltaFileIsRejected) {
  TempChain chain("snapdelta_missing");
  StateStore store(small_config(), 71);
  SnapshotChain writer({chain.path(), 16});
  const auto events = workload(300, 72);
  for (std::size_t i = 0; i < events.size() / 2; ++i) store.apply(events[i]);
  writer.snapshot(store);  // base
  for (std::size_t i = events.size() / 2; i < events.size(); ++i) {
    store.apply(events[i]);
  }
  const std::uint64_t delta_seq = writer.snapshot(store);
  track_manifest_files(chain);
  const std::string delta_path =
      chain.path() + ".delta." + std::to_string(delta_seq);
  ASSERT_EQ(std::remove(delta_path.c_str()), 0);
  EXPECT_THROW(SnapshotChain::restore_image(chain.path()), util::IoError);
}

TEST(ServiceSnapshotDelta, SplicedChainElementIsRejected) {
  // Two chains with identical scenario but different streams. Graft
  // chain A's delta into chain B — file AND manifest entry, so the
  // per-file checksum verifies — and only the parent link (the parent
  // checksum sealed inside the delta body) is left to refuse the splice.
  TempChain chain_a("snapdelta_splice_a");
  TempChain chain_b("snapdelta_splice_b");
  std::string delta_paths[2];
  std::string manifest_lines[2];
  for (int variant = 0; variant < 2; ++variant) {
    TempChain& chain = variant == 0 ? chain_a : chain_b;
    StateStore store(small_config(), 81);
    SnapshotChain writer({chain.path(), 16});
    const auto events = workload(300, 82 + variant);
    for (std::size_t i = 0; i < events.size() / 2; ++i) {
      store.apply(events[i]);
    }
    writer.snapshot(store);  // base
    for (std::size_t i = events.size() / 2; i < events.size(); ++i) {
      store.apply(events[i]);
    }
    const std::uint64_t delta_seq = writer.snapshot(store);
    track_manifest_files(chain);
    delta_paths[variant] =
        chain.path() + ".delta." + std::to_string(delta_seq);

    std::ifstream manifest(chain.path() + ".manifest");
    std::string line;
    while (std::getline(manifest, line)) {
      if (line.rfind("delta ", 0) == 0) manifest_lines[variant] = line;
    }
    ASSERT_FALSE(manifest_lines[variant].empty());
  }

  {  // graft A's delta file under B's delta filename...
    std::ifstream in(delta_paths[0], std::ios::binary);
    ASSERT_TRUE(in.good());
    std::ofstream out(delta_paths[1], std::ios::binary | std::ios::trunc);
    out << in.rdbuf();
  }
  {  // ...and carry A's checksum/seq into B's manifest, keeping B's
     // basename (fields: delta <file> <checksum> <seq>).
    std::istringstream a_fields(manifest_lines[0]);
    std::istringstream b_fields(manifest_lines[1]);
    std::string kind, a_file, b_file, a_checksum, a_seq;
    a_fields >> kind >> a_file >> a_checksum >> a_seq;
    b_fields >> kind >> b_file;
    std::ifstream manifest(chain_b.path() + ".manifest");
    std::ostringstream spliced;
    std::string line;
    while (std::getline(manifest, line)) {
      if (line == manifest_lines[1]) {
        spliced << "delta " << b_file << ' ' << a_checksum << ' ' << a_seq
                << '\n';
      } else {
        spliced << line << '\n';
      }
    }
    manifest.close();
    std::ofstream out(chain_b.path() + ".manifest",
                      std::ios::binary | std::ios::trunc);
    out << spliced.str();
  }
  EXPECT_THROW(SnapshotChain::restore_image(chain_b.path()), util::IoError);
}

TEST(ServiceSnapshotDelta, OrphanedDataFileWithoutManifestIsInvisible) {
  // A crash between the data write and the manifest write leaves an
  // orphan; chain_available must stay false and restore must fall back
  // to the classic single-file snapshot at `path`.
  TempChain chain("snapdelta_orphan");
  StateStore store(small_config(), 91);
  for (const Event& event : workload(150, 92)) store.apply(event);
  const std::uint64_t committed_seq = store.seq();
  save_image(chain.path(), store.image());

  // Orphaned base from a "newer" run that never committed.
  for (const Event& event : workload(50, 93)) store.apply(event);
  const std::string orphan = chain.path() + ".base." +
                             std::to_string(store.seq());
  chain.track(orphan);
  save_image(orphan, store.image());

  EXPECT_FALSE(SnapshotChain::chain_available(chain.path()));
  const StateImage restored = SnapshotChain::restore_image(chain.path());
  // The committed plain snapshot wins; the orphan stays invisible.
  EXPECT_EQ(restored.seq, committed_seq);
  EXPECT_LT(restored.seq, store.seq());
}

TEST(ServiceSnapshotDelta, ManifestTrailerAndMagicAreEnforced) {
  TempChain chain("snapdelta_manifest");
  StateStore store(small_config(), 101);
  for (const Event& event : workload(100, 102)) store.apply(event);
  SnapshotChain writer({chain.path(), 16});
  writer.snapshot(store);
  track_manifest_files(chain);

  const std::string manifest = chain.path() + ".manifest";
  std::string bytes;
  {
    std::ifstream in(manifest, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }
  {  // torn manifest: drop the `end` trailer
    const std::size_t trailer = bytes.rfind("end");
    ASSERT_NE(trailer, std::string::npos);
    std::ofstream out(manifest, std::ios::binary | std::ios::trunc);
    out << bytes.substr(0, trailer);
  }
  EXPECT_THROW(SnapshotChain::restore_image(chain.path()), util::IoError);
  {  // wrong magic
    std::ofstream out(manifest, std::ios::binary | std::ios::trunc);
    out << "impatience.other_format/1\nend\n";
  }
  EXPECT_THROW(SnapshotChain::restore_image(chain.path()), util::IoError);
}

}  // namespace
}  // namespace impatience::service
