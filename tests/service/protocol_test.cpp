#include "impatience/service/protocol.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace impatience::service {
namespace {

TEST(ServiceProtocol, ParsesEveryFrameKind) {
  auto clock = parse_event("T 42");
  ASSERT_TRUE(clock.has_value());
  EXPECT_EQ(clock->kind, Event::Kind::clock);
  EXPECT_EQ(clock->slot, 42);

  auto contact = parse_event("C 3 9");
  ASSERT_TRUE(contact.has_value());
  EXPECT_EQ(contact->kind, Event::Kind::contact);
  EXPECT_EQ(contact->a, 3u);
  EXPECT_EQ(contact->b, 9u);

  auto request = parse_event("R 5 17");
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->kind, Event::Kind::request);
  EXPECT_EQ(request->a, 5u);
  EXPECT_EQ(request->item, 17u);

  auto crash = parse_event("K 7");
  ASSERT_TRUE(crash.has_value());
  EXPECT_EQ(crash->kind, Event::Kind::crash);
  EXPECT_EQ(crash->a, 7u);

  auto quit = parse_event("Q");
  ASSERT_TRUE(quit.has_value());
  EXPECT_EQ(quit->kind, Event::Kind::quit);
}

TEST(ServiceProtocol, ToleratesSurroundingWhitespace) {
  EXPECT_TRUE(parse_event("  C 1 2  ").has_value());
  EXPECT_TRUE(parse_event("\tT 5").has_value());
}

TEST(ServiceProtocol, RejectsMalformedFrames) {
  // Wrong tag, missing fields, trailing junk, negative/overflow values,
  // self-contacts: all rejected, never crash.
  for (const char* line :
       {"X 1 2", "C 1", "C 1 2 3", "R 1", "T", "T -4", "T 1x", "C 1 1",
        "R a b", "Q extra", "C 1 99999999999999999999", "", "   ", "# hi"}) {
    EXPECT_FALSE(parse_event(line).has_value()) << "line: '" << line << "'";
  }
}

TEST(ServiceProtocol, NoiseLinesAreDistinguishable) {
  EXPECT_TRUE(is_noise_line(""));
  EXPECT_TRUE(is_noise_line("   "));
  EXPECT_TRUE(is_noise_line("# comment"));
  EXPECT_FALSE(is_noise_line("C 1 2"));
  EXPECT_FALSE(is_noise_line("garbage"));
}

TEST(ServiceProtocol, FormatParseRoundTrip) {
  StreamConfig config;
  config.events = 200;
  config.num_nodes = 12;
  config.num_items = 8;
  config.crash_fraction = 0.05;
  const auto events = generate_stream(config, 99);
  for (const Event& event : events) {
    const auto parsed = parse_event(format_event(event));
    ASSERT_TRUE(parsed.has_value()) << format_event(event);
    EXPECT_EQ(*parsed, event);
  }
}

TEST(ServiceProtocol, GeneratorIsDeterministicAndSeedSensitive) {
  StreamConfig config;
  config.events = 500;
  const auto a = generate_stream(config, 7);
  const auto b = generate_stream(config, 7);
  const auto c = generate_stream(config, 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(ServiceProtocol, GeneratorRespectsConfig) {
  StreamConfig config;
  config.events = 400;
  config.num_nodes = 6;
  config.num_items = 4;
  config.quit = true;
  const auto events = generate_stream(config, 3);
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().kind, Event::Kind::quit);
  Slot last_clock = 0;
  for (const Event& event : events) {
    switch (event.kind) {
      case Event::Kind::clock:
        EXPECT_GT(event.slot, last_clock);  // strictly advancing T frames
        last_clock = event.slot;
        break;
      case Event::Kind::contact:
        EXPECT_LT(event.a, 6u);
        EXPECT_LT(event.b, 6u);
        EXPECT_NE(event.a, event.b);
        break;
      case Event::Kind::request:
        EXPECT_LT(event.a, 6u);
        EXPECT_LT(event.item, 4u);
        break;
      default:
        break;
    }
  }
}

TEST(ServiceProtocol, HelloFrameParsesStrictly) {
  auto hello = parse_event("H");
  ASSERT_TRUE(hello.has_value());
  EXPECT_EQ(hello->kind, Event::Kind::hello);
  EXPECT_TRUE(parse_event("  H  ").has_value());
  EXPECT_FALSE(parse_event("H 1").has_value());
  EXPECT_FALSE(parse_event("Hx").has_value());
  EXPECT_EQ(format_event(*hello), "H");
}

TEST(ServiceProtocol, ClassifyLineCoversEveryClass) {
  EXPECT_EQ(classify_line(""), LineClass::noise);
  EXPECT_EQ(classify_line("# note"), LineClass::noise);
  EXPECT_EQ(classify_line("H"), LineClass::hello);
  EXPECT_EQ(classify_line("Q"), LineClass::quit);
  EXPECT_EQ(classify_line("garbage"), LineClass::malformed);
  EXPECT_EQ(classify_line("C 1 1"), LineClass::malformed);

  Event event;
  EXPECT_EQ(classify_line("C 1 2", &event), LineClass::event);
  EXPECT_EQ(event.kind, Event::Kind::contact);
  EXPECT_EQ(event.a, 1u);
  EXPECT_EQ(event.b, 2u);

  // Countability is what the seq cursor counts: events and malformed
  // lines occupy a sequence slot; noise and stream control do not.
  EXPECT_TRUE(is_countable(LineClass::event));
  EXPECT_TRUE(is_countable(LineClass::malformed));
  EXPECT_FALSE(is_countable(LineClass::noise));
  EXPECT_FALSE(is_countable(LineClass::hello));
  EXPECT_FALSE(is_countable(LineClass::quit));
}

TEST(ServiceProtocol, SeqReplyRoundTrips) {
  EXPECT_EQ(format_seq_reply(0), "S 0");
  EXPECT_EQ(format_seq_reply(12345), "S 12345");
  for (const std::uint64_t seq : {0ull, 1ull, 987654321ull}) {
    const auto parsed = parse_seq_reply(format_seq_reply(seq));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, seq);
  }
  EXPECT_EQ(parse_seq_reply("  S 7 \r"), 7u);
  for (const char* bad :
       {"S", "S x", "S -1", "S 1 2", "X 1", "", "S 99999999999999999999"}) {
    EXPECT_FALSE(parse_seq_reply(bad).has_value()) << bad;
  }
}

TEST(ServiceProtocol, WriteStreamEmitsOneLinePerFrame) {
  StreamConfig config;
  config.events = 50;
  const auto events = generate_stream(config, 1);
  std::ostringstream out;
  write_stream(out, events);
  std::istringstream in(out.str());
  std::string line;
  std::size_t parsed = 0;
  while (std::getline(in, line)) {
    EXPECT_TRUE(parse_event(line).has_value()) << line;
    ++parsed;
  }
  EXPECT_EQ(parsed, events.size());
}

}  // namespace
}  // namespace impatience::service
