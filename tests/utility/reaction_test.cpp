#include "impatience/utility/reaction.hpp"

#include <gtest/gtest.h>

#include "impatience/utility/families.hpp"

namespace impatience::utility {
namespace {

TEST(ReactionFunction, MatchesPsi) {
  ExponentialUtility u(0.5);
  ReactionFunction r(u, 0.05, 50.0);
  for (double y : {1.0, 7.0, 50.0}) {
    EXPECT_NEAR(r(y), psi(u, 0.05, 50.0, y), 1e-14);
  }
}

TEST(ReactionFunction, ScaleMultiplies) {
  StepUtility u(1.0);
  ReactionFunction r1(u, 0.05, 50.0, 1.0);
  ReactionFunction r3(u, 0.05, 50.0, 3.0);
  EXPECT_NEAR(r3(5.0), 3.0 * r1(5.0), 1e-14);
}

TEST(ReactionFunction, ReplicasAreUnbiased) {
  PowerUtility u(0.0);  // psi(y) = y / (mu |S|)
  ReactionFunction r(u, 0.05, 50.0);
  util::Rng rng(99);
  const double y = 4.0;
  const double target = r(y);  // 4 / 2.5 = 1.6
  EXPECT_NEAR(target, 1.6, 1e-12);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(r.replicas(y, rng));
  }
  EXPECT_NEAR(sum / n, target, 0.01);
}

TEST(ReactionFunction, ReplicasNeverNegative) {
  StepUtility u(1.0);
  ReactionFunction r(u, 0.05, 50.0);
  util::Rng rng(7);
  for (double y : {1.0, 2.0, 100.0, 10000.0}) {
    for (int i = 0; i < 100; ++i) {
      EXPECT_GE(r.replicas(y, rng), 0);
    }
  }
}

TEST(ReactionFunction, CopySemantics) {
  ExponentialUtility u(1.0);
  ReactionFunction a(u, 0.05, 50.0, 2.0);
  ReactionFunction b = a;  // copy ctor clones the utility
  EXPECT_NEAR(a(3.0), b(3.0), 1e-15);
  StepUtility s(1.0);
  ReactionFunction c(s, 0.1, 20.0);
  c = a;  // copy assignment
  EXPECT_NEAR(c(3.0), a(3.0), 1e-15);
  EXPECT_DOUBLE_EQ(c.scale(), 2.0);
}

TEST(ReactionFunction, Validation) {
  StepUtility u(1.0);
  EXPECT_THROW(ReactionFunction(u, 0.0, 50.0), std::invalid_argument);
  EXPECT_THROW(ReactionFunction(u, 0.05, 0.0), std::invalid_argument);
  EXPECT_THROW(ReactionFunction(u, 0.05, 50.0, 0.0), std::invalid_argument);
  ReactionFunction r(u, 0.05, 50.0);
  EXPECT_THROW(r(0.0), std::domain_error);
}

}  // namespace
}  // namespace impatience::utility
