// CachedTransform error-bound and fallback behaviour: interpolated
// transforms must stay within the configured absolute error of the exact
// (closed-form or Simpson) values across the grid range, delegate exactly
// outside it, and leave uncacheable columns untouched.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "impatience/utility/cached_transform.hpp"
#include "impatience/utility/families.hpp"
#include "impatience/util/rng.hpp"

namespace {

using impatience::utility::CachedTransform;
using impatience::utility::CachedTransformOptions;
using impatience::utility::DelayUtility;
namespace utility = impatience::utility;
namespace util = impatience::util;

/// Max |cached - exact| over a dense log-spaced sweep plus random
/// off-grid points of [m_min, m_max], per transform column.
struct Deviation {
  double loss = 0.0;
  double time_weighted = 0.0;
  double gain = 0.0;
};

Deviation max_deviation(const CachedTransform& cached, const DelayUtility& base,
                        const CachedTransformOptions& opts, int sweep = 1500,
                        int random = 1500) {
  Deviation dev;
  util::Rng rng(4242);
  const double lo = std::log(opts.m_min);
  const double hi = std::log(opts.m_max);
  auto probe = [&](double M) {
    dev.loss = std::max(dev.loss,
                        std::abs(cached.loss_transform(M) -
                                 base.loss_transform(M)));
    dev.time_weighted =
        std::max(dev.time_weighted, std::abs(cached.time_weighted_transform(M) -
                                             base.time_weighted_transform(M)));
    dev.gain = std::max(
        dev.gain, std::abs(cached.expected_gain(M) - base.expected_gain(M)));
  };
  for (int k = 0; k < sweep; ++k) {
    probe(std::exp(lo + (hi - lo) * k / static_cast<double>(sweep - 1)));
  }
  for (int k = 0; k < random; ++k) {
    probe(std::exp(rng.uniform(lo, hi)));
  }
  return dev;
}

TEST(CachedTransformTest, StepWithinBound) {
  const utility::StepUtility base(2.0);
  const CachedTransformOptions opts;  // defaults: [1e-6, 1e6] at 1e-9
  const CachedTransform cached(base, opts);
  const Deviation dev = max_deviation(cached, base, opts);
  EXPECT_LE(dev.loss, opts.abs_error);
  EXPECT_LE(dev.time_weighted, opts.abs_error);
  EXPECT_LE(dev.gain, opts.abs_error);
  EXPECT_GT(cached.table_points(), 0u);
}

TEST(CachedTransformTest, ExponentialWithinBound) {
  const utility::ExponentialUtility base(0.35);
  const CachedTransformOptions opts;
  const CachedTransform cached(base, opts);
  const Deviation dev = max_deviation(cached, base, opts);
  EXPECT_LE(dev.loss, opts.abs_error);
  EXPECT_LE(dev.time_weighted, opts.abs_error);
  EXPECT_LE(dev.gain, opts.abs_error);
}

TEST(CachedTransformTest, TabulatedWithinBound) {
  const utility::TabulatedUtility base(
      {{0.0, 1.0}, {1.0, 0.8}, {5.0, 0.35}, {20.0, 0.05}, {60.0, 0.0}});
  const CachedTransformOptions opts;
  const CachedTransform cached(base, opts);
  const Deviation dev = max_deviation(cached, base, opts);
  EXPECT_LE(dev.loss, opts.abs_error);
  EXPECT_LE(dev.time_weighted, opts.abs_error);
  EXPECT_LE(dev.gain, opts.abs_error);
}

TEST(CachedTransformTest, CostPowerWithinConfiguredBound) {
  // alpha < 1 (waiting cost): transform values grow like M^{alpha-1}
  // toward small M, so a narrower range and looser bound are the
  // realistic configuration.
  const utility::PowerUtility base(0.5);
  CachedTransformOptions opts;
  opts.m_min = 1e-2;
  opts.m_max = 1e2;
  opts.abs_error = 1e-7;
  const CachedTransform cached(base, opts);
  const Deviation dev = max_deviation(cached, base, opts);
  EXPECT_LE(dev.loss, opts.abs_error);
  EXPECT_LE(dev.time_weighted, opts.abs_error);
  EXPECT_LE(dev.gain, opts.abs_error);
}

TEST(CachedTransformTest, SimpsonBackedUtilityWithinBound) {
  // No transform overrides: the base falls back to adaptive Simpson, the
  // exact path the memo grid is meant to amortize.
  class RawExponential final : public DelayUtility {
   public:
    double value(double t) const override { return std::exp(-0.2 * t); }
    double value_at_zero() const override { return 1.0; }
    double value_at_inf() const override { return 0.0; }
    double differential(double t) const override {
      return 0.2 * std::exp(-0.2 * t);
    }
    std::string name() const override { return "raw-exp(0.2)"; }
    std::unique_ptr<DelayUtility> clone() const override {
      return std::make_unique<RawExponential>(*this);
    }
  };
  const RawExponential base;
  CachedTransformOptions opts;
  opts.abs_error = 1e-8;  // keep headroom above the quadrature tolerance
  const CachedTransform cached(base, opts);
  const Deviation dev = max_deviation(cached, base, opts, 500, 500);
  EXPECT_LE(dev.loss, opts.abs_error);
  EXPECT_LE(dev.time_weighted, opts.abs_error);
  EXPECT_LE(dev.gain, opts.abs_error);
}

TEST(CachedTransformTest, OutOfRangeDelegatesExactly) {
  const utility::StepUtility base(3.0);
  CachedTransformOptions opts;
  opts.m_min = 1e-3;
  opts.m_max = 1e3;
  const CachedTransform cached(base, opts);
  for (double M : {1e-5, 5e-4, 2e3, 1e7}) {
    EXPECT_EQ(cached.loss_transform(M), base.loss_transform(M));
    EXPECT_EQ(cached.time_weighted_transform(M),
              base.time_weighted_transform(M));
    EXPECT_EQ(cached.expected_gain(M), base.expected_gain(M));
  }
}

TEST(CachedTransformTest, UnboundedLossColumnDelegates) {
  // 1 < alpha < 2: L(M) is +inf everywhere, so the loss column cannot
  // tabulate and must pass through; expected_gain is finite and cached.
  const utility::PowerUtility base(1.5);
  CachedTransformOptions opts;
  opts.m_min = 1e-2;
  opts.m_max = 1e2;
  opts.abs_error = 1e-7;
  const CachedTransform cached(base, opts);
  EXPECT_TRUE(std::isinf(cached.loss_transform(1.0)));
  util::Rng rng(9);
  double dev = 0.0;
  for (int k = 0; k < 1000; ++k) {
    const double M = std::exp(rng.uniform(std::log(opts.m_min),
                                          std::log(opts.m_max)));
    dev = std::max(dev,
                   std::abs(cached.expected_gain(M) - base.expected_gain(M)));
  }
  EXPECT_LE(dev, opts.abs_error);
}

TEST(CachedTransformTest, PointEvaluationsAndNameDelegate) {
  const utility::ExponentialUtility base(0.1);
  const CachedTransform cached(base);
  EXPECT_EQ(cached.value(3.0), base.value(3.0));
  EXPECT_EQ(cached.value_at_zero(), base.value_at_zero());
  EXPECT_EQ(cached.value_at_inf(), base.value_at_inf());
  EXPECT_EQ(cached.differential(3.0), base.differential(3.0));
  EXPECT_EQ(cached.name(), "cached(" + base.name() + ")");
  EXPECT_TRUE(cached.bounded_at_zero());
}

TEST(CachedTransformTest, CloneSharesTable) {
  const utility::StepUtility base(4.0);
  const CachedTransform cached(base);
  const auto copy = cached.clone();
  const auto* copy_cached = dynamic_cast<const CachedTransform*>(copy.get());
  ASSERT_NE(copy_cached, nullptr);
  EXPECT_EQ(copy_cached->table_points(), cached.table_points());
  EXPECT_EQ(copy_cached->loss_transform(0.37), cached.loss_transform(0.37));
}

TEST(CachedTransformTest, MakeCachedDedupsAndMatchesBase) {
  // 8 items, two distinct profiles: one table per profile, every item's
  // transforms within the bound of its base.
  std::vector<std::unique_ptr<DelayUtility>> items;
  for (int i = 0; i < 8; ++i) {
    if (i % 2 == 0) {
      items.push_back(std::make_unique<utility::StepUtility>(6.0));
    } else {
      items.push_back(std::make_unique<utility::ExponentialUtility>(0.25));
    }
  }
  const utility::UtilitySet base_set(std::move(items));
  const utility::UtilitySet cached_set = utility::make_cached(base_set);
  ASSERT_EQ(cached_set.size(), base_set.size());
  const auto canon = cached_set.duplicate_of();
  for (std::size_t i = 0; i < canon.size(); ++i) {
    EXPECT_EQ(canon[i], i % 2);  // same grouping as the unwrapped set
    EXPECT_EQ(cached_set[i].name(), "cached(" + base_set[i].name() + ")");
    for (double M : {0.01, 0.3, 2.0, 40.0}) {
      EXPECT_NEAR(cached_set[i].loss_transform(M),
                  base_set[i].loss_transform(M), 1e-9);
      EXPECT_NEAR(cached_set[i].expected_gain(M),
                  base_set[i].expected_gain(M), 1e-9);
    }
  }
}

TEST(CachedTransformTest, MakeCachedKeepsDistinctTabulatedCurves) {
  // Regression: both curves share the name "tabulated(2 pts)"; dedup must
  // not replace one item's utility with the other's.
  using Sample = utility::TabulatedUtility::Sample;
  std::vector<std::unique_ptr<DelayUtility>> items;
  items.push_back(std::make_unique<utility::TabulatedUtility>(
      std::vector<Sample>{{0.0, 1.0}, {1.0, 0.0}}));
  items.push_back(std::make_unique<utility::TabulatedUtility>(
      std::vector<Sample>{{0.0, 1.0}, {20.0, 0.0}}));
  const utility::UtilitySet base_set(std::move(items));
  const utility::UtilitySet cached_set = utility::make_cached(base_set);
  const auto canon = cached_set.duplicate_of();
  EXPECT_EQ(canon[0], 0u);
  EXPECT_EQ(canon[1], 1u);
  for (std::size_t i = 0; i < cached_set.size(); ++i) {
    EXPECT_DOUBLE_EQ(cached_set[i].value(0.5), base_set[i].value(0.5));
    for (double M : {0.01, 0.3, 2.0, 40.0}) {
      EXPECT_NEAR(cached_set[i].loss_transform(M),
                  base_set[i].loss_transform(M), 1e-9);
    }
  }
}

}  // namespace
