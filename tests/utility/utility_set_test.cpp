#include "impatience/utility/utility_set.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "impatience/utility/families.hpp"

namespace impatience::utility {
namespace {

UtilitySet mixed_set() {
  std::vector<std::unique_ptr<DelayUtility>> us;
  us.push_back(std::make_unique<StepUtility>(2.0));
  us.push_back(std::make_unique<ExponentialUtility>(0.5));
  us.push_back(std::make_unique<PowerUtility>(0.0));
  return UtilitySet(std::move(us));
}

TEST(UtilitySet, IndexedAccess) {
  const auto set = mixed_set();
  EXPECT_EQ(set.size(), 3u);
  EXPECT_DOUBLE_EQ(set[0].value(1.0), 1.0);
  EXPECT_NEAR(set[1].value(2.0), std::exp(-1.0), 1e-12);
  EXPECT_DOUBLE_EQ(set[2].value(3.0), -3.0);
}

TEST(UtilitySet, AtBoundsChecked) {
  const auto set = mixed_set();
  EXPECT_NO_THROW(set.at(2));
  EXPECT_THROW(set.at(3), std::out_of_range);
}

TEST(UtilitySet, UniformConstructorClones) {
  StepUtility u(1.5);
  UtilitySet set(u, 4);
  EXPECT_EQ(set.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(set[i].value(1.0), 1.0);
    EXPECT_DOUBLE_EQ(set[i].value(2.0), 0.0);
    EXPECT_NE(&set[i], static_cast<const DelayUtility*>(&u));
  }
}

TEST(UtilitySet, CopyIsDeep) {
  auto a = mixed_set();
  UtilitySet b = a;
  EXPECT_EQ(b.size(), a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NE(&a[i], &b[i]);
    EXPECT_DOUBLE_EQ(a[i].value(1.3), b[i].value(1.3));
  }
  UtilitySet c(StepUtility(1.0), 1);
  c = a;
  EXPECT_EQ(c.size(), 3u);
}

TEST(UtilitySet, AllBoundedAtZero) {
  EXPECT_TRUE(mixed_set().all_bounded_at_zero());
  std::vector<std::unique_ptr<DelayUtility>> us;
  us.push_back(std::make_unique<StepUtility>(1.0));
  us.push_back(std::make_unique<PowerUtility>(1.5));  // h(0+) = inf
  UtilitySet set(std::move(us));
  EXPECT_FALSE(set.all_bounded_at_zero());
}

TEST(UtilitySet, DuplicateOfGroupsBehaviourallyIdenticalItems) {
  std::vector<std::unique_ptr<DelayUtility>> us;
  us.push_back(std::make_unique<StepUtility>(2.0));
  us.push_back(std::make_unique<ExponentialUtility>(0.5));
  us.push_back(std::make_unique<StepUtility>(2.0));
  us.push_back(std::make_unique<StepUtility>(3.0));
  const UtilitySet set(std::move(us));
  const auto canon = set.duplicate_of();
  EXPECT_EQ(canon[0], 0u);
  EXPECT_EQ(canon[1], 1u);
  EXPECT_EQ(canon[2], 0u);  // same tau merges
  EXPECT_EQ(canon[3], 3u);  // different tau stays distinct
}

TEST(UtilitySet, TabulatedCurvesWithEqualPointCountStayDistinct) {
  // Both names are "tabulated(2 pts)": identity must come from the
  // sample values (fingerprint), not the display name.
  const std::vector<TabulatedUtility::Sample> fast{{0.0, 1.0}, {1.0, 0.0}};
  const std::vector<TabulatedUtility::Sample> slow{{0.0, 1.0}, {10.0, 0.0}};
  std::vector<std::unique_ptr<DelayUtility>> us;
  us.push_back(std::make_unique<TabulatedUtility>(fast));
  us.push_back(std::make_unique<TabulatedUtility>(slow));
  us.push_back(std::make_unique<TabulatedUtility>(fast));
  const UtilitySet set(std::move(us));
  EXPECT_EQ(set[0].name(), set[1].name());
  EXPECT_NE(set[0].fingerprint(), set[1].fingerprint());
  const auto canon = set.duplicate_of();
  EXPECT_EQ(canon[0], 0u);
  EXPECT_EQ(canon[1], 1u);
  EXPECT_EQ(canon[2], 0u);  // identical samples still merge
}

TEST(UtilitySet, ParametersBelowToStringPrecisionStayDistinct) {
  // std::to_string would print both alphas as 0.000000.
  std::vector<std::unique_ptr<DelayUtility>> us;
  us.push_back(std::make_unique<PowerUtility>(1e-7));
  us.push_back(std::make_unique<PowerUtility>(2e-7));
  const UtilitySet set(std::move(us));
  EXPECT_NE(set[0].name(), set[1].name());
  const auto canon = set.duplicate_of();
  EXPECT_EQ(canon[1], 1u);
}

TEST(UtilitySet, MixtureFingerprintSeesComponentSamples) {
  // Two mixtures whose tabulated components share a name but not a curve.
  auto make_mixture = [](double t_end) {
    std::vector<MixtureUtility::Component> comps;
    comps.push_back({1.0, std::make_unique<TabulatedUtility>(
                              std::vector<TabulatedUtility::Sample>{
                                  {0.0, 1.0}, {t_end, 0.0}})});
    return std::make_unique<MixtureUtility>(std::move(comps));
  };
  std::vector<std::unique_ptr<DelayUtility>> us;
  us.push_back(make_mixture(1.0));
  us.push_back(make_mixture(5.0));
  const UtilitySet set(std::move(us));
  EXPECT_NE(set[0].fingerprint(), set[1].fingerprint());
  EXPECT_EQ(set.duplicate_of()[1], 1u);
}

TEST(UtilitySet, Validation) {
  EXPECT_THROW(UtilitySet({}), std::invalid_argument);
  std::vector<std::unique_ptr<DelayUtility>> with_null;
  with_null.push_back(nullptr);
  EXPECT_THROW(UtilitySet(std::move(with_null)), std::invalid_argument);
  StepUtility u(1.0);
  EXPECT_THROW(UtilitySet(u, 0), std::invalid_argument);
}

}  // namespace
}  // namespace impatience::utility
