#include "impatience/utility/factory.hpp"

#include <gtest/gtest.h>

#include "impatience/utility/families.hpp"

namespace impatience::utility {
namespace {

TEST(Factory, Step) {
  auto u = make_utility("step:tau=2.5");
  auto* step = dynamic_cast<StepUtility*>(u.get());
  ASSERT_NE(step, nullptr);
  EXPECT_DOUBLE_EQ(step->tau(), 2.5);
}

TEST(Factory, StepDefaultTau) {
  auto u = make_utility("step");
  auto* step = dynamic_cast<StepUtility*>(u.get());
  ASSERT_NE(step, nullptr);
  EXPECT_DOUBLE_EQ(step->tau(), 1.0);
}

TEST(Factory, Exponential) {
  auto u = make_utility("exp:nu=0.1");
  auto* e = dynamic_cast<ExponentialUtility*>(u.get());
  ASSERT_NE(e, nullptr);
  EXPECT_DOUBLE_EQ(e->nu(), 0.1);
}

TEST(Factory, PowerNegativeAlpha) {
  auto u = make_utility("power:alpha=-1.5");
  auto* p = dynamic_cast<PowerUtility*>(u.get());
  ASSERT_NE(p, nullptr);
  EXPECT_DOUBLE_EQ(p->alpha(), -1.5);
}

TEST(Factory, NegLog) {
  auto u = make_utility("neglog");
  EXPECT_NE(dynamic_cast<NegLogUtility*>(u.get()), nullptr);
}

TEST(Factory, UnknownFamilyThrows) {
  EXPECT_THROW(make_utility("linear"), std::invalid_argument);
  EXPECT_THROW(make_utility(""), std::invalid_argument);
}

TEST(Factory, UnknownParameterThrows) {
  EXPECT_THROW(make_utility("step:gamma=1"), std::invalid_argument);
  EXPECT_THROW(make_utility("neglog:nu=1"), std::invalid_argument);
}

TEST(Factory, BadNumberThrows) {
  EXPECT_THROW(make_utility("step:tau=abc"), std::invalid_argument);
  EXPECT_THROW(make_utility("step:tau=1.5x"), std::invalid_argument);
  EXPECT_THROW(make_utility("step:tau"), std::invalid_argument);
}

TEST(Factory, InvalidParameterValuePropagates) {
  EXPECT_THROW(make_utility("step:tau=-1"), std::invalid_argument);
  EXPECT_THROW(make_utility("power:alpha=2"), std::invalid_argument);
}

}  // namespace
}  // namespace impatience::utility
