// The discrete-time contact model (Section 3.4): geometric fulfilment
// delays, the discrete differential delay-utility, and convergence to the
// continuous model as the slot length shrinks — the match the paper's
// simulations rely on.
#include "impatience/utility/discrete.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "impatience/util/rng.hpp"
#include "impatience/utility/families.hpp"

namespace impatience::utility {
namespace {

TEST(DiscreteGain, StepClosedForm) {
  // h = 1{t <= tau}: E[h(K)] = P(K <= tau) = 1 - (1-p)^floor(tau).
  StepUtility u(5.0);
  const double p = 0.2;
  EXPECT_NEAR(discrete_expected_gain(u, p),
              1.0 - std::pow(1.0 - p, 5.0), 1e-10);
}

TEST(DiscreteGain, CertainFulfillment) {
  ExponentialUtility u(0.3);
  EXPECT_NEAR(discrete_expected_gain(u, 1.0, 2.0), u.value(2.0), 1e-12);
}

TEST(DiscreteGain, GeometricExpectation) {
  // h(t) = -t (power alpha = 0): E[-delta K] = -delta / p.
  PowerUtility u(0.0);
  for (double p : {0.05, 0.3, 0.9}) {
    EXPECT_NEAR(discrete_expected_gain(u, p), -1.0 / p, 1e-8) << p;
  }
}

TEST(DiscreteGain, MatchesMonteCarlo) {
  ExponentialUtility u(0.1);
  util::Rng rng(5);
  const double p = 0.07;
  double total = 0.0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    long k = 1;
    while (!rng.bernoulli(p)) ++k;
    total += u.value(static_cast<double>(k));
  }
  EXPECT_NEAR(discrete_expected_gain(u, p), total / n, 5e-3);
}

TEST(DiscreteGain, ConvergesToContinuousModel) {
  // With p = M * delta and delta -> 0, the discrete gain approaches the
  // continuous E[h(Y)], Y ~ Exp(M) (the paper's Section 3.4 remark).
  const StepUtility step(2.0);
  const ExponentialUtility expu(0.5);
  const PowerUtility cost(0.0);
  const DelayUtility* utilities[] = {&step, &expu, &cost};
  const double M = 0.4;
  for (const DelayUtility* u : utilities) {
    const double continuous = u->expected_gain(M);
    double prev_err = std::numeric_limits<double>::infinity();
    for (double delta : {0.5, 0.1, 0.02}) {
      const double discrete =
          discrete_expected_gain(*u, M * delta, delta);
      const double err = std::abs(discrete - continuous);
      // Strictly shrinking up to floating-point noise (h(t) = -t is
      // exact at every delta).
      EXPECT_LT(err, prev_err + 1e-12) << u->name() << " delta=" << delta;
      prev_err = err;
    }
    EXPECT_LT(prev_err, 0.02 * std::max(1.0, std::abs(continuous)))
        << u->name();
  }
}

TEST(DiscreteDifferential, NonNegativeAndTelescopes) {
  ExponentialUtility u(0.7);
  double total = 0.0;
  for (long k = 1; k <= 200; ++k) {
    const double dc = discrete_differential(u, k);
    EXPECT_GE(dc, 0.0);
    total += dc;
  }
  // Telescoping: sum_{k=1}^{K} dc(k) = h(1) - h(K+1).
  EXPECT_NEAR(total, u.value(1.0) - u.value(201.0), 1e-12);
}

TEST(DiscreteLoss, Lemma1Identity) {
  // E[h(delta K)] = h(delta) - sum_{k>=1} (1-p)^k dc(k delta).
  const StepUtility step(4.0);
  const ExponentialUtility expu(0.2);
  const PowerUtility cost(-0.5);
  const DelayUtility* utilities[] = {&step, &expu, &cost};
  for (const DelayUtility* u : utilities) {
    for (double p : {0.05, 0.4}) {
      EXPECT_NEAR(discrete_expected_gain(*u, p),
                  u->value(1.0) - discrete_loss(*u, p), 1e-8)
          << u->name() << " p=" << p;
    }
  }
}

TEST(Discrete, DomainErrors) {
  StepUtility u(1.0);
  EXPECT_THROW(discrete_expected_gain(u, 0.0), std::domain_error);
  EXPECT_THROW(discrete_expected_gain(u, 1.5), std::domain_error);
  EXPECT_THROW(discrete_expected_gain(u, 0.5, -1.0), std::domain_error);
  EXPECT_THROW(discrete_differential(u, 0), std::domain_error);
  EXPECT_THROW(discrete_loss(u, -0.1), std::domain_error);
}

}  // namespace
}  // namespace impatience::utility
