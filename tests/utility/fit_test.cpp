// Delay-utility estimation from feedback (Section 7 future work).
#include "impatience/utility/fit.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "impatience/util/rng.hpp"

namespace impatience::utility {
namespace {

TEST(Isotonic, AlreadyMonotoneIsUnchanged) {
  const std::vector<double> v{5.0, 4.0, 4.0, 1.0};
  const std::vector<double> w{1.0, 1.0, 1.0, 1.0};
  EXPECT_EQ(isotonic_decreasing(v, w), v);
}

TEST(Isotonic, PoolsViolators) {
  // {1, 3} violates decreasing; pooled mean 2.
  const auto out = isotonic_decreasing({1.0, 3.0}, {1.0, 1.0});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], 2.0);
  EXPECT_DOUBLE_EQ(out[1], 2.0);
}

TEST(Isotonic, WeightedPooling) {
  // Weights 3 and 1: pooled mean (1*3 + 5*1)/4 = 2.
  const auto out = isotonic_decreasing({1.0, 5.0}, {3.0, 1.0});
  EXPECT_DOUBLE_EQ(out[0], 2.0);
  EXPECT_DOUBLE_EQ(out[1], 2.0);
}

TEST(Isotonic, ResultIsNonIncreasing) {
  util::Rng rng(1);
  std::vector<double> v, w;
  for (int i = 0; i < 200; ++i) {
    v.push_back(rng.uniform(-5.0, 5.0));
    w.push_back(rng.uniform(0.1, 2.0));
  }
  const auto out = isotonic_decreasing(v, w);
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_LE(out[i], out[i - 1] + 1e-12);
  }
  // Weighted mean is preserved by PAV.
  double mv = 0.0, mo = 0.0, wsum = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    mv += v[i] * w[i];
    mo += out[i] * w[i];
    wsum += w[i];
  }
  EXPECT_NEAR(mv / wsum, mo / wsum, 1e-9);
}

TEST(Isotonic, Validation) {
  EXPECT_THROW(isotonic_decreasing({1.0}, {1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(isotonic_decreasing({1.0}, {0.0}), std::invalid_argument);
}

TEST(FitDelayUtility, RecoversStepFunction) {
  // True impatience: users watch iff delay <= 30. Noiseless feedback.
  std::vector<FeedbackSample> samples;
  for (int d = 1; d <= 100; ++d) {
    samples.push_back({static_cast<double>(d), d <= 30 ? 1.0 : 0.0});
  }
  const auto fitted = fit_delay_utility(samples, {.bins = 20});
  EXPECT_GT(fitted.value(10.0), 0.9);
  EXPECT_LT(fitted.value(80.0), 0.1);
}

TEST(FitDelayUtility, RecoversExponentialFromBernoulliFeedback) {
  // gain ~ Bernoulli(e^{-nu d}): the binned isotonic fit must track the
  // true curve.
  const double nu = 0.05;
  ExponentialUtility truth(nu);
  util::Rng rng(7);
  std::vector<FeedbackSample> samples;
  for (int k = 0; k < 20000; ++k) {
    const double d = rng.uniform(0.5, 80.0);
    samples.push_back({d, rng.bernoulli(truth.value(d)) ? 1.0 : 0.0});
  }
  const auto fitted = fit_delay_utility(samples, {.bins = 16});
  for (double t : {5.0, 20.0, 40.0, 70.0}) {
    EXPECT_NEAR(fitted.value(t), truth.value(t), 0.06) << t;
  }
  // Transforms of the fitted utility are usable downstream.
  EXPECT_GT(fitted.time_weighted_transform(0.25), 0.0);
}

TEST(FitDelayUtility, FittedPhiTracksTruePhi) {
  // The quantity QCR actually needs is phi; the fit must get it roughly
  // right even with noisy feedback.
  const double nu = 0.1;
  ExponentialUtility truth(nu);
  util::Rng rng(9);
  std::vector<FeedbackSample> samples;
  for (int k = 0; k < 40000; ++k) {
    const double d = rng.exponential(0.04);  // delays roughly Exp(0.04)
    samples.push_back({d, rng.bernoulli(truth.value(d)) ? 1.0 : 0.0});
  }
  const auto fitted = fit_delay_utility(samples, {.bins = 24});
  for (double x : {2.0, 5.0, 10.0}) {
    const double pt = phi(truth, 0.05, x);
    const double pf = phi(fitted, 0.05, x);
    EXPECT_NEAR(pf, pt, 0.35 * pt) << "x=" << x;
  }
}

TEST(FitDelayUtility, Validation) {
  EXPECT_THROW(fit_delay_utility({}), std::invalid_argument);
  EXPECT_THROW(fit_delay_utility({{1.0, 1.0}}), std::invalid_argument);
  EXPECT_THROW(fit_delay_utility({{2.0, 1.0}, {2.0, 0.5}}),
               std::invalid_argument);
  // Non-positive delays are dropped; the remainder must still suffice.
  EXPECT_THROW(fit_delay_utility({{-1.0, 1.0}, {0.0, 1.0}, {2.0, 0.5}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace impatience::utility
