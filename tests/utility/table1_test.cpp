// Line-by-line verification of the paper's Table 1: for each delay-utility
// family, the equilibrium condition function phi and the reaction function
// psi must match the printed closed forms.
#include <gtest/gtest.h>

#include <cmath>

#include "impatience/util/math.hpp"
#include "impatience/utility/families.hpp"

namespace impatience::utility {
namespace {

constexpr double kMu = 0.05;
constexpr double kS = 50.0;

TEST(Table1, StepPhi) {
  // phi(x) = mu * tau * e^{-mu tau x}.
  const double tau = 2.0;
  StepUtility u(tau);
  for (double x : {1.0, 5.0, 30.0}) {
    EXPECT_NEAR(phi(u, kMu, x), kMu * tau * std::exp(-kMu * tau * x), 1e-14);
  }
}

TEST(Table1, StepPsi) {
  // psi(y) = (mu tau |S| / y) e^{-mu tau |S| / y}.
  const double tau = 2.0;
  StepUtility u(tau);
  for (double y : {1.0, 10.0, 50.0}) {
    const double a = kMu * tau * kS / y;
    EXPECT_NEAR(psi(u, kMu, kS, y), a * std::exp(-a), 1e-14);
  }
}

TEST(Table1, StepGain) {
  // U-contribution per unit demand: 1 - e^{-mu tau x}.
  const double tau = 1.0;
  StepUtility u(tau);
  for (double x : {1.0, 10.0}) {
    EXPECT_NEAR(u.expected_gain(kMu * x), 1.0 - std::exp(-kMu * tau * x),
                1e-14);
  }
}

TEST(Table1, ExponentialGain) {
  // 1 - 1 / (1 + (mu/nu) x).
  const double nu = 0.3;
  ExponentialUtility u(nu);
  for (double x : {1.0, 4.0, 25.0}) {
    EXPECT_NEAR(u.expected_gain(kMu * x),
                1.0 - 1.0 / (1.0 + (kMu / nu) * x), 1e-12);
  }
}

TEST(Table1, ExponentialPhi) {
  // phi(x) = (mu/nu) (1 + (mu/nu) x)^{-2}.
  const double nu = 0.3;
  ExponentialUtility u(nu);
  for (double x : {1.0, 4.0, 25.0}) {
    const double r = kMu / nu;
    EXPECT_NEAR(phi(u, kMu, x), r * std::pow(1.0 + r * x, -2.0), 1e-12);
  }
}

TEST(Table1, ExponentialPsi) {
  // psi(y) = a * y / (y + a)^2 with a = mu |S| / nu  (equivalently
  // (S/y) phi(S/y); Table 1's printed form rearranges the same thing).
  const double nu = 0.3;
  ExponentialUtility u(nu);
  const double a = kMu * kS / nu;
  for (double y : {1.0, 10.0, 50.0}) {
    EXPECT_NEAR(psi(u, kMu, kS, y), a * y / ((y + a) * (y + a)), 1e-12);
  }
}

TEST(Table1, PowerGain) {
  // U per unit demand: Gamma(2-a)/(a-1) * (mu x)^{a-1}, both regimes.
  for (double alpha : {-1.0, 0.0, 0.5, 1.5}) {
    PowerUtility u(alpha);
    for (double x : {1.0, 8.0}) {
      const double expected = util::gamma_fn(2.0 - alpha) / (alpha - 1.0) *
                              std::pow(kMu * x, alpha - 1.0);
      EXPECT_NEAR(u.expected_gain(kMu * x), expected,
                  1e-10 * std::abs(expected))
          << "alpha=" << alpha << " x=" << x;
    }
  }
}

TEST(Table1, PowerPhi) {
  // phi(x) = mu^{alpha-1} Gamma(2-alpha) x^{alpha-2}.
  for (double alpha : {-1.0, 0.0, 0.5, 1.5}) {
    PowerUtility u(alpha);
    for (double x : {1.0, 8.0, 40.0}) {
      const double expected = std::pow(kMu, alpha - 1.0) *
                              util::gamma_fn(2.0 - alpha) *
                              std::pow(x, alpha - 2.0);
      EXPECT_NEAR(phi(u, kMu, x), expected, 1e-10 * expected)
          << "alpha=" << alpha;
    }
  }
}

TEST(Table1, PowerPsi) {
  // psi(y) = y^{1-alpha} mu^{alpha-1} |S|^{alpha-1} Gamma(2-alpha).
  for (double alpha : {-1.0, 0.0, 0.5, 1.5}) {
    PowerUtility u(alpha);
    for (double y : {1.0, 10.0, 50.0}) {
      const double expected = std::pow(y, 1.0 - alpha) *
                              std::pow(kMu, alpha - 1.0) *
                              std::pow(kS, alpha - 1.0) *
                              util::gamma_fn(2.0 - alpha);
      EXPECT_NEAR(psi(u, kMu, kS, y), expected, 1e-10 * expected)
          << "alpha=" << alpha;
    }
  }
}

TEST(Table1, NegLogGain) {
  // U per unit demand: ln(x) + cst  (we carry cst = ln(mu) + gamma).
  NegLogUtility u;
  const double diff = u.expected_gain(kMu * 10.0) - u.expected_gain(kMu * 2.0);
  EXPECT_NEAR(diff, std::log(10.0 / 2.0), 1e-12);
}

TEST(Table1, NegLogPhi) {
  // phi(x) = 1/x exactly (independent of mu).
  NegLogUtility u;
  for (double x : {1.0, 7.0, 50.0}) {
    EXPECT_NEAR(phi(u, kMu, x), 1.0 / x, 1e-14);
    EXPECT_NEAR(phi(u, 0.5, x), 1.0 / x, 1e-14);
  }
}

TEST(Table1, NegLogPsiIsLinear) {
  // psi(y) = (S/y) phi(S/y) = y * (1/S) * ... = 1 for all y? No:
  // (S/y) * (y/S) = 1. The neg-log reaction is constant: one replica per
  // fulfilment regardless of the counter (pure proportional replication).
  NegLogUtility u;
  for (double y : {1.0, 3.0, 42.0}) {
    EXPECT_NEAR(psi(u, kMu, kS, y), 1.0, 1e-13);
  }
}

TEST(Table1, BalanceConditionGivesPowerLawAllocation) {
  // Property 1 for the power family: d_i phi(x_i) = const implies
  // x_i proportional to d_i^{1/(2-alpha)} (Fig. 2).
  for (double alpha : {-1.0, 0.0, 0.5, 1.5}) {
    PowerUtility u(alpha);
    const double d1 = 1.0, d2 = 4.0;
    // Solve d * phi(x) = lambda for both demands at a common lambda.
    const double lambda = 0.02;
    const double x1 = util::invert_decreasing(
        [&](double x) { return d1 * phi(u, kMu, x); }, lambda, 1e-6, 1e9);
    const double x2 = util::invert_decreasing(
        [&](double x) { return d2 * phi(u, kMu, x); }, lambda, 1e-6, 1e9);
    EXPECT_NEAR(x2 / x1, std::pow(d2 / d1, 1.0 / (2.0 - alpha)), 1e-5)
        << "alpha=" << alpha;
  }
}

TEST(Table1, QcrFixedPointSatisfiesBalanceCondition) {
  // Property 2: with psi(y) = (S/y) phi(S/y), the stationarity condition
  // d_i (1/x) psi(S/x) equalized across items is exactly d_i phi(x_i)
  // equalized. Verify the identity (1/x) psi(S/x) = phi(x) pointwise.
  const StepUtility step(1.0);
  const ExponentialUtility expu(0.4);
  const PowerUtility pow0(0.0);
  const DelayUtility* utilities[] = {&step, &expu, &pow0};
  for (const DelayUtility* u : utilities) {
    for (double x : {0.5, 2.0, 10.0, 49.0}) {
      const double lhs = (1.0 / x) * psi(*u, kMu, kS, kS / x);
      EXPECT_NEAR(lhs, phi(*u, kMu, x), 1e-12 * std::abs(lhs)) << u->name();
    }
  }
}

}  // namespace
}  // namespace impatience::utility
