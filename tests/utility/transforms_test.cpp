// Cross-validation of the closed-form transforms against (a) the numeric
// quadrature defaults of the base class and (b) Monte Carlo estimates of
// E[h(Y)] with Y ~ Exp(M). This is the executable form of Lemma 1.
#include <gtest/gtest.h>

#include <cmath>

#include "impatience/util/math.hpp"
#include "impatience/util/rng.hpp"
#include "impatience/utility/families.hpp"

namespace impatience::utility {
namespace {

/// Exposes the numeric base-class quadrature for a wrapped utility.
class NumericShim final : public DelayUtility {
 public:
  explicit NumericShim(const DelayUtility& inner) : inner_(inner.clone()) {}
  double value(double t) const override { return inner_->value(t); }
  double value_at_zero() const override { return inner_->value_at_zero(); }
  double value_at_inf() const override { return inner_->value_at_inf(); }
  double differential(double t) const override {
    return inner_->differential(t);
  }
  // No overrides for the transforms: base-class quadrature applies.
  std::string name() const override { return "numeric(" + inner_->name() + ")"; }
  std::unique_ptr<DelayUtility> clone() const override {
    return std::make_unique<NumericShim>(*inner_);
  }

 private:
  std::unique_ptr<DelayUtility> inner_;
};

TEST(Transforms, ExponentialClosedFormMatchesQuadrature) {
  ExponentialUtility u(0.8);
  NumericShim numeric(u);
  for (double M : {0.1, 0.5, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(u.loss_transform(M), numeric.loss_transform(M), 1e-7)
        << "M=" << M;
    EXPECT_NEAR(u.time_weighted_transform(M),
                numeric.time_weighted_transform(M), 1e-7)
        << "M=" << M;
  }
}

TEST(Transforms, PowerCostClosedFormMatchesQuadrature) {
  // alpha = 0.5: c(t) = t^{-1/2} is integrable at 0 and the quadrature
  // handles the mild singularity.
  PowerUtility u(0.5);
  NumericShim numeric(u);
  for (double M : {0.5, 1.0, 4.0}) {
    EXPECT_NEAR(u.time_weighted_transform(M),
                numeric.time_weighted_transform(M),
                1e-4 * u.time_weighted_transform(M))
        << "M=" << M;
  }
}

TEST(Transforms, TabulatedClosedFormMatchesQuadrature) {
  TabulatedUtility u({{0.0, 1.0}, {0.5, 0.9}, {2.0, 0.3}, {5.0, 0.0}});
  NumericShim numeric(u);
  for (double M : {0.2, 1.0, 5.0}) {
    EXPECT_NEAR(u.loss_transform(M), numeric.loss_transform(M), 1e-7);
    EXPECT_NEAR(u.time_weighted_transform(M),
                numeric.time_weighted_transform(M), 1e-7);
  }
}

TEST(Transforms, TimeWeightedIsNegativeDerivativeOfLoss) {
  // T(M) = -dL/dM, checked by central finite difference.
  ExponentialUtility exp_u(1.3);
  TabulatedUtility tab_u({{0.0, 1.0}, {1.0, 0.4}, {3.0, 0.0}});
  const DelayUtility* utilities[] = {&exp_u, &tab_u};
  for (const DelayUtility* u : utilities) {
    for (double M : {0.5, 1.0, 2.0}) {
      const double h = 1e-5 * M;
      const double dL =
          (u->loss_transform(M + h) - u->loss_transform(M - h)) / (2.0 * h);
      EXPECT_NEAR(u->time_weighted_transform(M), -dL, 1e-6) << u->name();
    }
  }
}

struct MonteCarloCase {
  const char* label;
  std::unique_ptr<DelayUtility> utility;
};

class MonteCarloGainTest : public ::testing::TestWithParam<int> {};

std::unique_ptr<DelayUtility> make_case(int which) {
  switch (which) {
    case 0: return std::make_unique<StepUtility>(1.5);
    case 1: return std::make_unique<ExponentialUtility>(0.6);
    case 2: return std::make_unique<PowerUtility>(0.0);
    case 3: return std::make_unique<PowerUtility>(-1.0);
    case 4: return std::make_unique<PowerUtility>(1.5);
    case 5: return std::make_unique<NegLogUtility>();
    default: return nullptr;
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, MonteCarloGainTest,
                         ::testing::Range(0, 6));

TEST_P(MonteCarloGainTest, ExpectedGainMatchesSampledMean) {
  const auto u = make_case(GetParam());
  util::Rng rng(1234 + static_cast<std::uint64_t>(GetParam()));
  for (double M : {0.5, 2.0}) {
    const int n = 400000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) {
      sum += u->value(rng.exponential(M));
    }
    const double mc = sum / n;
    const double analytic = u->expected_gain(M);
    const double tol = 0.02 * std::max(1.0, std::abs(analytic));
    EXPECT_NEAR(mc, analytic, tol) << u->name() << " M=" << M;
  }
}

TEST(Transforms, PhiIsMuTimesTimeWeighted) {
  ExponentialUtility u(1.0);
  const double mu = 0.05;
  for (double x : {1.0, 5.0, 20.0}) {
    EXPECT_NEAR(phi(u, mu, x), mu * u.time_weighted_transform(mu * x),
                1e-15);
  }
}

TEST(Transforms, PhiIsStrictlyDecreasingInX) {
  const StepUtility step(1.0);
  const PowerUtility power(0.5);
  const DelayUtility* utilities[] = {&step, &power};
  for (const DelayUtility* u : utilities) {
    double prev = phi(*u, 0.05, 0.5);
    for (double x = 1.0; x < 60.0; x *= 1.5) {
      const double v = phi(*u, 0.05, x);
      EXPECT_LT(v, prev) << u->name();
      prev = v;
    }
  }
}

TEST(Transforms, PsiDefinition) {
  // psi(y) = (S/y) * phi(S/y).
  ExponentialUtility u(0.3);
  const double mu = 0.05, S = 50.0;
  for (double y : {1.0, 5.0, 50.0}) {
    const double x = S / y;
    EXPECT_NEAR(psi(u, mu, S, y), x * phi(u, mu, x), 1e-13);
  }
}

TEST(Transforms, DomainErrors) {
  ExponentialUtility u(1.0);
  EXPECT_THROW(phi(u, 0.0, 1.0), std::domain_error);
  EXPECT_THROW(phi(u, 1.0, 0.0), std::domain_error);
  EXPECT_THROW(psi(u, 1.0, 50.0, 0.0), std::domain_error);
  EXPECT_THROW(u.expected_gain(0.0), std::domain_error);
}

TEST(Transforms, UnboundedUtilitiesRejectDefaultExpectedGainPath) {
  // NumericShim has no expected_gain override, so unbounded h(0+) must
  // raise instead of returning inf - inf.
  NegLogUtility inner;
  NumericShim shim(inner);
  EXPECT_THROW(shim.expected_gain(1.0), std::logic_error);
}

}  // namespace
}  // namespace impatience::utility
