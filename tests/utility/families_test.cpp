#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "impatience/utility/families.hpp"

namespace impatience::utility {
namespace {

// ---------------------------------------------------------------- Step

TEST(StepUtility, ValueIsIndicator) {
  StepUtility u(2.0);
  EXPECT_DOUBLE_EQ(u.value(0.5), 1.0);
  EXPECT_DOUBLE_EQ(u.value(2.0), 1.0);
  EXPECT_DOUBLE_EQ(u.value(2.0001), 0.0);
  EXPECT_DOUBLE_EQ(u.value_at_zero(), 1.0);
  EXPECT_DOUBLE_EQ(u.value_at_inf(), 0.0);
}

TEST(StepUtility, ClosedFormTransforms) {
  StepUtility u(3.0);
  EXPECT_NEAR(u.loss_transform(0.5), std::exp(-1.5), 1e-12);
  EXPECT_NEAR(u.time_weighted_transform(0.5), 3.0 * std::exp(-1.5), 1e-12);
}

TEST(StepUtility, ExpectedGainIsFulfillmentProbability) {
  StepUtility u(1.0);
  // P(Y <= tau) for Y ~ Exp(2) = 1 - e^{-2}.
  EXPECT_NEAR(u.expected_gain(2.0), 1.0 - std::exp(-2.0), 1e-12);
}

TEST(StepUtility, RejectsBadTau) {
  EXPECT_THROW(StepUtility(0.0), std::invalid_argument);
  EXPECT_THROW(StepUtility(-1.0), std::invalid_argument);
}

TEST(StepUtility, RejectsBadM) {
  StepUtility u(1.0);
  EXPECT_THROW(u.loss_transform(0.0), std::domain_error);
  EXPECT_THROW(u.time_weighted_transform(-1.0), std::domain_error);
}

// --------------------------------------------------------- Exponential

TEST(ExponentialUtility, ValueAndDifferential) {
  ExponentialUtility u(0.5);
  EXPECT_NEAR(u.value(2.0), std::exp(-1.0), 1e-12);
  EXPECT_NEAR(u.differential(2.0), 0.5 * std::exp(-1.0), 1e-12);
  EXPECT_DOUBLE_EQ(u.value_at_zero(), 1.0);
  EXPECT_DOUBLE_EQ(u.value_at_inf(), 0.0);
}

TEST(ExponentialUtility, ClosedFormTransforms) {
  ExponentialUtility u(2.0);
  EXPECT_NEAR(u.loss_transform(3.0), 2.0 / 5.0, 1e-12);
  EXPECT_NEAR(u.time_weighted_transform(3.0), 2.0 / 25.0, 1e-12);
}

TEST(ExponentialUtility, ExpectedGain) {
  // E[e^{-nu Y}] = M / (M + nu) for Y ~ Exp(M).
  ExponentialUtility u(1.0);
  EXPECT_NEAR(u.expected_gain(4.0), 4.0 / 5.0, 1e-12);
}

TEST(ExponentialUtility, RejectsBadNu) {
  EXPECT_THROW(ExponentialUtility(0.0), std::invalid_argument);
}

// --------------------------------------------------------------- Power

TEST(PowerUtility, TimeCriticalRegime) {
  PowerUtility u(1.5);  // h = 2/sqrt(t)
  EXPECT_NEAR(u.value(4.0), std::pow(4.0, -0.5) / 0.5, 1e-12);
  EXPECT_TRUE(std::isinf(u.value_at_zero()));
  EXPECT_DOUBLE_EQ(u.value_at_inf(), 0.0);
  EXPECT_GT(u.expected_gain(1.0), 0.0);
}

TEST(PowerUtility, WaitingCostRegime) {
  PowerUtility u(0.0);  // h(t) = -t
  EXPECT_DOUBLE_EQ(u.value(3.0), -3.0);
  EXPECT_DOUBLE_EQ(u.value_at_zero(), 0.0);
  EXPECT_TRUE(std::isinf(u.value_at_inf()));
  EXPECT_LT(u.value_at_inf(), 0.0);
  // E[-Y] = -1/M.
  EXPECT_NEAR(u.expected_gain(2.0), -0.5, 1e-12);
}

TEST(PowerUtility, DifferentialIsPower) {
  PowerUtility u(0.5);
  EXPECT_NEAR(u.differential(4.0), std::pow(4.0, -0.5), 1e-12);
}

TEST(PowerUtility, LossTransformClosedForm) {
  PowerUtility u(0.5);
  // Gamma(0.5) M^{-0.5}.
  EXPECT_NEAR(u.loss_transform(4.0), std::sqrt(M_PI) * 0.5, 1e-10);
}

TEST(PowerUtility, LossTransformDivergesAboveOne) {
  PowerUtility u(1.5);
  EXPECT_TRUE(std::isinf(u.loss_transform(1.0)));
}

TEST(PowerUtility, TimeWeightedTransformClosedForm) {
  PowerUtility u(1.5);
  // Gamma(0.5) M^{-0.5}.
  EXPECT_NEAR(u.time_weighted_transform(4.0), std::sqrt(M_PI) * 0.5, 1e-10);
}

TEST(PowerUtility, RejectsInvalidAlpha) {
  EXPECT_THROW(PowerUtility(2.0), std::invalid_argument);
  EXPECT_THROW(PowerUtility(2.5), std::invalid_argument);
  EXPECT_THROW(PowerUtility(1.0), std::invalid_argument);
}

TEST(PowerUtility, NegativeAlphaCost) {
  PowerUtility u(-1.0);  // h = -t^2/2
  EXPECT_DOUBLE_EQ(u.value(2.0), -2.0);
  // E[-Y^2/2] = -1/M^2 for Y ~ Exp(M).
  EXPECT_NEAR(u.expected_gain(2.0), -0.25, 1e-12);
}

// -------------------------------------------------------------- NegLog

TEST(NegLogUtility, Value) {
  NegLogUtility u;
  EXPECT_DOUBLE_EQ(u.value(1.0), 0.0);
  EXPECT_LT(u.value(2.0), 0.0);
  EXPECT_GT(u.value(0.5), 0.0);
  EXPECT_TRUE(std::isinf(u.value_at_zero()));
  EXPECT_TRUE(std::isinf(u.value_at_inf()));
}

TEST(NegLogUtility, TimeWeightedTransformIsReciprocal) {
  NegLogUtility u;
  EXPECT_NEAR(u.time_weighted_transform(5.0), 0.2, 1e-12);
}

TEST(NegLogUtility, ExpectedGain) {
  NegLogUtility u;
  // E[-ln Y] = ln M + gamma.
  EXPECT_NEAR(u.expected_gain(1.0), 0.5772156649, 1e-9);
  EXPECT_NEAR(u.expected_gain(std::exp(1.0)), 1.5772156649, 1e-9);
}

// ----------------------------------------------------------- Tabulated

TEST(TabulatedUtility, InterpolatesLinearly) {
  TabulatedUtility u({{0.0, 1.0}, {2.0, 0.0}});
  EXPECT_DOUBLE_EQ(u.value(0.0), 1.0);
  EXPECT_DOUBLE_EQ(u.value(1.0), 0.5);
  EXPECT_DOUBLE_EQ(u.value(2.0), 0.0);
  EXPECT_DOUBLE_EQ(u.value(5.0), 0.0);  // constant beyond last sample
}

TEST(TabulatedUtility, DifferentialIsSlopeMagnitude) {
  TabulatedUtility u({{0.0, 1.0}, {2.0, 0.0}, {4.0, -3.0}});
  EXPECT_DOUBLE_EQ(u.differential(1.0), 0.5);
  EXPECT_DOUBLE_EQ(u.differential(3.0), 1.5);
  EXPECT_DOUBLE_EQ(u.differential(10.0), 0.0);
}

TEST(TabulatedUtility, Validation) {
  EXPECT_THROW(TabulatedUtility({{0.0, 1.0}}), std::invalid_argument);
  EXPECT_THROW(TabulatedUtility({{1.0, 1.0}, {1.0, 0.0}}),
               std::invalid_argument);
  EXPECT_THROW(TabulatedUtility({{0.0, 0.0}, {1.0, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(TabulatedUtility({{-1.0, 1.0}, {1.0, 0.0}}),
               std::invalid_argument);
}

TEST(TabulatedUtility, LossTransformMatchesNumericBase) {
  TabulatedUtility u({{0.0, 2.0}, {1.0, 1.5}, {3.0, 0.25}, {6.0, 0.0}});
  // The override must agree with direct quadrature of the differential.
  const DelayUtility& base = u;
  for (double M : {0.2, 1.0, 4.0}) {
    const double closed = u.loss_transform(M);
    double numeric = 0.0;
    // Manual quadrature over each linear segment.
    for (double t = 0.0005; t < 6.0; t += 0.001) {
      numeric += std::exp(-M * t) * base.differential(t) * 0.001;
    }
    EXPECT_NEAR(closed, numeric, 1e-3) << "M=" << M;
  }
}

// ------------------------------------------------------------- Mixture

TEST(MixtureUtility, WeightedSum) {
  std::vector<MixtureUtility::Component> comps;
  comps.push_back({0.5, std::make_unique<StepUtility>(1.0)});
  comps.push_back({0.5, std::make_unique<ExponentialUtility>(1.0)});
  MixtureUtility u(std::move(comps));
  EXPECT_NEAR(u.value(0.5), 0.5 * 1.0 + 0.5 * std::exp(-0.5), 1e-12);
  EXPECT_DOUBLE_EQ(u.value_at_zero(), 1.0);
  EXPECT_NEAR(u.loss_transform(2.0),
              0.5 * std::exp(-2.0) + 0.5 * (1.0 / 3.0), 1e-12);
}

TEST(MixtureUtility, Validation) {
  EXPECT_THROW(MixtureUtility({}), std::invalid_argument);
  std::vector<MixtureUtility::Component> bad;
  bad.push_back({0.0, std::make_unique<StepUtility>(1.0)});
  EXPECT_THROW(MixtureUtility(std::move(bad)), std::invalid_argument);
}

TEST(MixtureUtility, CloneIsDeep) {
  std::vector<MixtureUtility::Component> comps;
  comps.push_back({1.0, std::make_unique<ExponentialUtility>(2.0)});
  MixtureUtility u(std::move(comps));
  auto copy = u.clone();
  EXPECT_NEAR(copy->value(1.0), u.value(1.0), 1e-15);
  EXPECT_NE(copy.get(), static_cast<DelayUtility*>(&u));
}

// -------------------------------------------------- generic invariants

class AllFamiliesTest
    : public ::testing::TestWithParam<const DelayUtility*> {};

// Shared instances for the parameterized sweep.
const StepUtility kStep(1.0);
const ExponentialUtility kExp(0.7);
const PowerUtility kPowerCost(0.0);
const PowerUtility kPowerCost2(-1.5);
const PowerUtility kPowerCritical(1.5);
const NegLogUtility kNegLog;

INSTANTIATE_TEST_SUITE_P(Families, AllFamiliesTest,
                         ::testing::Values(&kStep, &kExp, &kPowerCost,
                                           &kPowerCost2, &kPowerCritical,
                                           &kNegLog));

TEST_P(AllFamiliesTest, ValueIsNonIncreasing) {
  const DelayUtility& u = *GetParam();
  double prev = u.value(0.01);
  for (double t = 0.02; t < 20.0; t *= 1.3) {
    const double v = u.value(t);
    EXPECT_LE(v, prev + 1e-12) << u.name() << " at t=" << t;
    prev = v;
  }
}

TEST_P(AllFamiliesTest, TimeWeightedTransformIsPositiveAndDecreasing) {
  const DelayUtility& u = *GetParam();
  double prev = u.time_weighted_transform(0.05);
  EXPECT_GT(prev, 0.0);
  for (double M = 0.1; M < 50.0; M *= 2.0) {
    const double v = u.time_weighted_transform(M);
    EXPECT_GT(v, 0.0) << u.name();
    EXPECT_LT(v, prev) << u.name() << " at M=" << M;
    prev = v;
  }
}

TEST_P(AllFamiliesTest, ExpectedGainIncreasesWithFulfilmentRate) {
  const DelayUtility& u = *GetParam();
  double prev = u.expected_gain(0.05);
  for (double M = 0.1; M < 50.0; M *= 2.0) {
    const double v = u.expected_gain(M);
    EXPECT_GT(v, prev) << u.name() << " at M=" << M;
    prev = v;
  }
}

TEST_P(AllFamiliesTest, CloneAgrees) {
  const DelayUtility& u = *GetParam();
  const auto copy = u.clone();
  EXPECT_EQ(copy->name(), u.name());
  for (double t : {0.3, 1.0, 4.2}) {
    EXPECT_DOUBLE_EQ(copy->value(t), u.value(t));
  }
  EXPECT_DOUBLE_EQ(copy->time_weighted_transform(1.3),
                   u.time_weighted_transform(1.3));
}

}  // namespace
}  // namespace impatience::utility
