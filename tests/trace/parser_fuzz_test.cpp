// Robustness sweep: random garbage fed to every parser must either throw
// a std::runtime_error or produce a structurally valid trace — never
// crash, hang, or return out-of-range events.
#include <gtest/gtest.h>

#include <sstream>

#include "impatience/trace/parsers.hpp"
#include "impatience/util/rng.hpp"

namespace impatience::trace {
namespace {

std::string random_garbage(util::Rng& rng, bool numeric_bias) {
  static const char* tokens[] = {"CONN", "up",   "down", "-5",  "1e300",
                                 "nan",  "#",    "x9",   "\t",  "0.5",
                                 "12",   "3 4",  "..",   "inf", ""};
  std::ostringstream out;
  const int lines = static_cast<int>(rng.uniform_index(12));
  for (int l = 0; l < lines; ++l) {
    const int cols = static_cast<int>(rng.uniform_index(7));
    for (int c = 0; c < cols; ++c) {
      if (numeric_bias && rng.bernoulli(0.7)) {
        out << rng.uniform_int(-10, 1000);
      } else {
        out << tokens[rng.uniform_index(std::size(tokens))];
      }
      out << ' ';
    }
    out << '\n';
  }
  return out.str();
}

void check_valid(const ContactTrace& t) {
  ASSERT_GT(t.num_nodes(), 0u);
  ASSERT_GT(t.duration(), 0);
  for (const auto& e : t.events()) {
    ASSERT_LT(e.a, e.b);
    ASSERT_LT(e.b, t.num_nodes());
    ASSERT_GE(e.slot, 0);
    ASSERT_LT(e.slot, t.duration());
  }
}

TEST(ParserFuzz, CrawdadNeverCrashes) {
  util::Rng rng(0xFEED);
  for (int round = 0; round < 300; ++round) {
    std::istringstream in(random_garbage(rng, true));
    try {
      check_valid(parse_crawdad(in, CrawdadOptions{}));
    } catch (const std::runtime_error&) {
      // acceptable outcome
    } catch (const std::invalid_argument&) {
      // trace-level validation is also acceptable
    }
  }
}

TEST(ParserFuzz, OneEventsNeverCrashes) {
  util::Rng rng(0xBEEF);
  for (int round = 0; round < 300; ++round) {
    std::istringstream in(random_garbage(rng, false));
    try {
      check_valid(parse_one_events(in, OneOptions{}));
    } catch (const std::runtime_error&) {
    } catch (const std::invalid_argument&) {
    }
  }
}

TEST(ParserFuzz, GpsNeverCrashes) {
  util::Rng rng(0xCAFE);
  for (int round = 0; round < 300; ++round) {
    std::istringstream in(random_garbage(rng, true));
    try {
      check_valid(parse_gps(in, GpsOptions{}));
    } catch (const std::runtime_error&) {
    } catch (const std::invalid_argument&) {
    }
  }
}

TEST(ParserFuzz, NativeNeverCrashes) {
  util::Rng rng(0xD00D);
  for (int round = 0; round < 300; ++round) {
    std::string body = random_garbage(rng, true);
    if (rng.bernoulli(0.5)) {
      body = "nodes 4 duration 50\n" + body;  // sometimes a valid header
    }
    std::istringstream in(body);
    try {
      check_valid(read_native(in));
    } catch (const std::runtime_error&) {
    } catch (const std::invalid_argument&) {
    }
  }
}

// Lenient mode is the stronger contract: mutated input NEVER throws —
// malformed lines are skipped and counted, and the surviving trace is
// still structurally valid.

TEST(ParserFuzz, CrawdadLenientNeverThrows) {
  util::Rng rng(0x1EA1);
  for (int round = 0; round < 300; ++round) {
    std::istringstream in(random_garbage(rng, true));
    CrawdadOptions options;
    ParseReport report;
    options.parse.lenient = true;
    options.parse.report = &report;
    ContactTrace trace(1, 1, {});
    EXPECT_NO_THROW(trace = parse_crawdad(in, options)) << "round " << round;
    check_valid(trace);
  }
}

TEST(ParserFuzz, OneEventsLenientNeverThrows) {
  util::Rng rng(0x1EA2);
  for (int round = 0; round < 300; ++round) {
    std::istringstream in(random_garbage(rng, false));
    OneOptions options;
    ParseReport report;
    options.parse.lenient = true;
    options.parse.report = &report;
    ContactTrace trace(1, 1, {});
    EXPECT_NO_THROW(trace = parse_one_events(in, options))
        << "round " << round;
    check_valid(trace);
  }
}

TEST(ParserFuzz, GpsLenientNeverThrows) {
  util::Rng rng(0x1EA3);
  for (int round = 0; round < 300; ++round) {
    std::istringstream in(random_garbage(rng, true));
    GpsOptions options;
    ParseReport report;
    options.parse.lenient = true;
    options.parse.report = &report;
    ContactTrace trace(1, 1, {});
    EXPECT_NO_THROW(trace = parse_gps(in, options)) << "round " << round;
    check_valid(trace);
  }
}

TEST(ParserFuzz, LenientCountsSkippedLines) {
  // Two good crawdad records around two malformed ones: the good pair
  // parses, the bad pair is counted.
  const std::string body =
      "1 2 10 20\n"
      "garbage line here\n"
      "3 4 -nan oops\n"
      "1 3 15 30\n";
  std::istringstream in(body);
  CrawdadOptions options;
  ParseReport report;
  options.parse.lenient = true;
  options.parse.report = &report;
  const auto trace = parse_crawdad(in, options);
  EXPECT_EQ(report.malformed_lines, 2u);
  EXPECT_FALSE(trace.events().empty());
}

}  // namespace
}  // namespace impatience::trace
