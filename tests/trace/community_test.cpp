// Community-structured traces and the Infocom node-selection
// preprocessing (Section 6.3).
#include <gtest/gtest.h>

#include "impatience/trace/generators.hpp"

namespace impatience::trace {
namespace {

TEST(CommunityTrace, IntraRatesDominate) {
  util::Rng rng(1);
  CommunityTraceParams params;
  params.num_nodes = 20;
  params.duration = 3000;
  params.num_communities = 4;
  params.intra_rate = 0.2;
  params.inter_rate = 0.004;
  const auto t = generate_community_trace(params, rng);
  const auto rates = estimate_rates(t);
  double intra = 0.0, inter = 0.0;
  int n_intra = 0, n_inter = 0;
  for (NodeId a = 0; a < 20; ++a) {
    for (NodeId b = a + 1; b < 20; ++b) {
      if (community_of(a, 4) == community_of(b, 4)) {
        intra += rates.at(a, b);
        ++n_intra;
      } else {
        inter += rates.at(a, b);
        ++n_inter;
      }
    }
  }
  EXPECT_NEAR(intra / n_intra, 0.2, 0.02);
  EXPECT_NEAR(inter / n_inter, 0.004, 0.002);
}

TEST(CommunityTrace, CommunityAssignmentRoundRobin) {
  EXPECT_EQ(community_of(0, 3), 0);
  EXPECT_EQ(community_of(1, 3), 1);
  EXPECT_EQ(community_of(2, 3), 2);
  EXPECT_EQ(community_of(3, 3), 0);
  EXPECT_THROW(community_of(0, 0), std::invalid_argument);
}

TEST(CommunityTrace, Validation) {
  util::Rng rng(2);
  CommunityTraceParams bad;
  bad.num_communities = 0;
  EXPECT_THROW(generate_community_trace(bad, rng), std::invalid_argument);
  CommunityTraceParams neg;
  neg.intra_rate = -0.1;
  EXPECT_THROW(generate_community_trace(neg, rng), std::invalid_argument);
}

TEST(SelectMostActive, KeepsBestConnectedAndRemaps) {
  // Node 3 and 1 are busy; node 0 meets once; node 2 never.
  ContactTrace t(4, 100,
                 {{0, 1, 3}, {10, 1, 3}, {20, 1, 3}, {30, 0, 3}, {40, 0, 1}});
  const auto sub = select_most_active_nodes(t, 2);
  EXPECT_EQ(sub.num_nodes(), 2u);
  EXPECT_EQ(sub.duration(), 100);
  // Nodes {1, 3} kept (counts 4 and 4); their mutual contacts survive.
  EXPECT_EQ(sub.size(), 3u);
  for (const auto& e : sub.events()) {
    EXPECT_LT(e.b, 2u);
  }
}

TEST(SelectMostActive, DropsCrossContacts) {
  ContactTrace t(3, 50, {{0, 0, 1}, {1, 0, 1}, {2, 0, 2}});
  const auto sub = select_most_active_nodes(t, 2);
  // Kept nodes: 0 (3 contacts) and 1 (2 contacts); the 0-2 contact drops.
  EXPECT_EQ(sub.size(), 2u);
}

TEST(SelectMostActive, FullSelectionPreservesEventCount) {
  util::Rng rng(3);
  const auto t = generate_poisson({10, 500, 0.05}, rng);
  const auto sub = select_most_active_nodes(t, 10);
  EXPECT_EQ(sub.size(), t.size());
}

TEST(SelectMostActive, Validation) {
  ContactTrace t(3, 10, {{0, 0, 1}});
  EXPECT_THROW(select_most_active_nodes(t, 1), std::invalid_argument);
  EXPECT_THROW(select_most_active_nodes(t, 4), std::invalid_argument);
}

}  // namespace
}  // namespace impatience::trace
