// Streaming contact feeds (docs/perf.md §6): GeneratedSource must
// reproduce the materializing generators event for event, the paged
// on-disk format must round-trip, and a simulation driven from any
// EventSource must be bit-identical to the materialized path for the
// same seed — on both kernels, with and without faults, and under
// meeting parallelism. Runs under `ctest -L sim`.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "impatience/core/simulator.hpp"
#include "impatience/trace/event_source.hpp"
#include "impatience/trace/generators.hpp"
#include "impatience/trace/paged_trace.hpp"
#include "impatience/utility/families.hpp"

namespace impatience::trace {
namespace {

std::vector<ContactEvent> drain(EventSource& source) {
  std::vector<ContactEvent> out;
  Slot prev = -1;
  while (source.next_slot() != EventSource::kNoMoreEvents) {
    const Slot slot = source.next_slot();
    EXPECT_GT(slot, prev) << "batches must advance in slot order";
    prev = slot;
    const auto batch = source.take_batch();
    EXPECT_FALSE(batch.empty());
    for (const ContactEvent& e : batch) {
      EXPECT_EQ(e.slot, slot);
      EXPECT_LT(e.a, e.b);
    }
    out.insert(out.end(), batch.begin(), batch.end());
  }
  return out;
}

void expect_same_events(const std::vector<ContactEvent>& got,
                        const std::vector<ContactEvent>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].slot, want[i].slot) << "event " << i;
    EXPECT_EQ(got[i].a, want[i].a) << "event " << i;
    EXPECT_EQ(got[i].b, want[i].b) << "event " << i;
  }
}

TEST(GeneratedSource, MatchesGeneratePoissonBitForBit) {
  const PoissonTraceParams params{30, 400, 0.05};
  util::Rng gen(123);
  const auto tr = generate_poisson(params, gen);
  GeneratedSource source(params, util::Rng(123));
  expect_same_events(drain(source), tr.events());
}

TEST(GeneratedSource, MatchesGenerateCommunityTraceBitForBit) {
  CommunityTraceParams params;
  params.num_nodes = 24;
  params.duration = 300;
  params.num_communities = 4;
  params.intra_rate = 0.1;
  params.inter_rate = 0.01;
  util::Rng gen(321);
  const auto tr = generate_community_trace(params, gen);
  auto source = GeneratedSource::community(params, util::Rng(321));
  expect_same_events(drain(source), tr.events());
}

TEST(GeneratedSource, MatchesGenerateHeterogeneousBitForBit) {
  RateMatrix rates(10);
  // An uneven star-plus-ring with zero-rate pairs mixed in.
  for (NodeId a = 0; a < 10; ++a) {
    for (NodeId b = a + 1; b < 10; ++b) {
      if ((a + b) % 3 == 0) continue;  // leave some pairs at zero
      rates.set(a, b, 0.01 * static_cast<double>(a + b));
    }
  }
  util::Rng gen(456);
  const auto tr = generate_heterogeneous(rates, 500, gen);
  GeneratedSource source(rates, 500, util::Rng(456));
  expect_same_events(drain(source), tr.events());
}

TEST(GeneratedSource, NextSlotIsIdempotentAndSkipsEmptySlots) {
  const PoissonTraceParams params{8, 200, 0.01};
  GeneratedSource source(params, util::Rng(9));
  while (source.next_slot() != EventSource::kNoMoreEvents) {
    const Slot s1 = source.next_slot();
    const Slot s2 = source.next_slot();
    EXPECT_EQ(s1, s2);
    source.take_batch();
  }
  EXPECT_EQ(source.next_slot(), EventSource::kNoMoreEvents);
}

TEST(GeneratedSource, ZeroRateEmitsNothing) {
  const PoissonTraceParams params{50, 100, 0.0};
  GeneratedSource source(params, util::Rng(1));
  EXPECT_EQ(source.next_slot(), EventSource::kNoMoreEvents);
}

TEST(MaterializedSource, StreamsTheTraceAndThrowsWhenDrained) {
  util::Rng gen(7);
  const auto tr = generate_poisson({12, 150, 0.05}, gen);
  MaterializedSource source(tr);
  EXPECT_EQ(source.max_slot_events_hint(), tr.max_slot_events());
  expect_same_events(drain(source), tr.events());
  EXPECT_THROW(source.take_batch(), std::logic_error);
}

// --------------------------------------------------------------------
// Paged on-disk format.

std::string temp_path(const char* name) {
  return testing::TempDir() + name;
}

TEST(PagedTrace, RoundTripsAcrossPageSizes) {
  util::Rng gen(11);
  const auto tr = generate_poisson({20, 300, 0.08}, gen);
  for (std::size_t page : {std::size_t{3}, std::size_t{64},
                           std::size_t{100000}}) {
    const std::string path = temp_path("paged_roundtrip.bin");
    write_paged_trace(tr, path, page);
    const auto back = read_paged_trace(path);
    EXPECT_EQ(back.num_nodes(), tr.num_nodes());
    EXPECT_EQ(back.duration(), tr.duration());
    expect_same_events(back.events(), tr.events());
    std::remove(path.c_str());
  }
}

TEST(PagedTrace, BatchesSpanPageBoundaries) {
  // Page size 2 guarantees many slots whose events straddle pages; the
  // reader must still emit whole-slot batches.
  util::Rng gen(22);
  const auto tr = generate_poisson({16, 200, 0.2}, gen);
  const std::string path = temp_path("paged_span.bin");
  write_paged_trace(tr, path, 2);
  PagedTraceReader reader(path);
  EXPECT_EQ(reader.total_events(), tr.events().size());
  EXPECT_GT(reader.num_pages(), 1u);
  expect_same_events(drain(reader), tr.events());
  std::remove(path.c_str());
}

TEST(PagedTrace, RejectsBadMagicAndTruncation) {
  const std::string path = temp_path("paged_bad.bin");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "NOTATRACEFILE";
  }
  EXPECT_THROW(PagedTraceReader{path}, std::runtime_error);

  util::Rng gen(33);
  const auto tr = generate_poisson({10, 100, 0.1}, gen);
  write_paged_trace(tr, path, 8);
  // Truncate mid-data: reading past the cut must throw, not hang.
  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  bytes.resize(bytes.size() - bytes.size() / 4);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW(
      {
        PagedTraceReader reader(path);
        drain(reader);
      },
      std::runtime_error);
  std::remove(path.c_str());
}

TEST(PagedTrace, RejectsEmptyPageSize) {
  util::Rng gen(44);
  const auto tr = generate_poisson({10, 100, 0.1}, gen);
  EXPECT_THROW(write_paged_trace(tr, temp_path("paged_zero.bin"), 0),
               std::invalid_argument);
}

TEST(PagedTrace, MmapAndStdioDecodeBitIdentically) {
  // The I/O mode is a pure transport choice: mapped in-place decode and
  // the seek+read stdio path must hand out the same events, page for
  // page, including slots straddling page boundaries (page size 2).
  util::Rng gen(55);
  const auto tr = generate_poisson({18, 250, 0.15}, gen);
  const std::string path = temp_path("paged_iomode.bin");
  for (std::size_t page : {std::size_t{2}, std::size_t{64}}) {
    write_paged_trace(tr, path, page);

    PagedTraceReader mapped(path, TraceIo::kMmap);
    EXPECT_EQ(mapped.io_mode(), TraceIo::kMmap);
    PagedTraceReader streamed(path, TraceIo::kStdio);
    EXPECT_EQ(streamed.io_mode(), TraceIo::kStdio);

    const auto from_map = drain(mapped);
    expect_same_events(from_map, tr.events());
    expect_same_events(drain(streamed), from_map);
  }
  // kAuto resolves to one of the two concrete modes and still matches.
  PagedTraceReader auto_reader(path, TraceIo::kAuto);
  EXPECT_NE(auto_reader.io_mode(), TraceIo::kAuto);
  expect_same_events(drain(auto_reader), tr.events());
  std::remove(path.c_str());
}

TEST(PagedTrace, MmapModeRejectsTruncatedData) {
  util::Rng gen(66);
  const auto tr = generate_poisson({10, 100, 0.1}, gen);
  const std::string path = temp_path("paged_iomode_trunc.bin");
  write_paged_trace(tr, path, 8);
  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  bytes.resize(bytes.size() - bytes.size() / 4);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW(
      {
        PagedTraceReader reader(path, TraceIo::kMmap);
        drain(reader);
      },
      std::runtime_error);
  std::remove(path.c_str());
}

// --------------------------------------------------------------------
// Kernel bit-identity: simulate() from any EventSource must equal the
// materialized run draw for draw.

void expect_bit_identical(const core::SimulationResult& a,
                          const core::SimulationResult& b,
                          const char* what) {
  EXPECT_DOUBLE_EQ(a.total_gain, b.total_gain) << what;
  EXPECT_EQ(a.fulfillments, b.fulfillments) << what;
  EXPECT_EQ(a.immediate_fulfillments, b.immediate_fulfillments) << what;
  EXPECT_EQ(a.censored_requests, b.censored_requests) << what;
  EXPECT_EQ(a.requests_created, b.requests_created) << what;
  EXPECT_DOUBLE_EQ(a.mean_delay, b.mean_delay) << what;
  EXPECT_EQ(a.final_counts, b.final_counts) << what;
  ASSERT_EQ(a.observed_series.size(), b.observed_series.size()) << what;
  for (std::size_t i = 0; i < a.observed_series.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.observed_series[i].value, b.observed_series[i].value)
        << what << " series @" << i;
  }
}

core::SimulationResult run_materialized(const ContactTrace& tr,
                                        const core::SimOptions& options,
                                        std::uint64_t seed) {
  const auto catalog = core::Catalog::pareto(15, 1.0, 1.0);
  utility::StepUtility u(12.0);
  core::StaticPolicy policy;
  util::Rng rng(seed);
  return core::simulate(tr, catalog, u, policy, options, rng);
}

core::SimulationResult run_streamed(EventSource& source,
                                    const core::SimOptions& options,
                                    std::uint64_t seed) {
  const auto catalog = core::Catalog::pareto(15, 1.0, 1.0);
  utility::StepUtility u(12.0);
  core::StaticPolicy policy;
  util::Rng rng(seed);
  return core::simulate(source, catalog, u, policy, options, rng);
}

TEST(StreamingSimulation, BitIdenticalAcrossSourcesKernelsAndFaults) {
  const PoissonTraceParams params{25, 500, 0.04};
  util::Rng gen(808);
  const auto tr = generate_poisson(params, gen);
  const std::string path = temp_path("paged_sim.bin");
  write_paged_trace(tr, path, 16);

  for (const auto kernel :
       {core::SimKernel::slot_stepped, core::SimKernel::event_driven}) {
    for (const bool faults : {false, true}) {
      for (const int intra : {0, 2}) {
        core::SimOptions options;
        options.cache_capacity = 3;
        options.kernel = kernel;
        options.meeting_parallelism = intra;
        if (faults) {
          options.faults.p_drop = 0.05;
          options.faults.p_crash = 0.001;
          options.faults.p_truncate = 0.1;
          options.faults.seed = 4242;
        }
        const std::string what =
            std::string(core::kernel_name(kernel)) +
            (faults ? "+faults" : "") + "+intra" + std::to_string(intra);
        const auto reference = run_materialized(tr, options, 999);

        MaterializedSource materialized(tr);
        expect_bit_identical(run_streamed(materialized, options, 999),
                             reference, (what + "/materialized").c_str());

        GeneratedSource generated(params, util::Rng(808));
        expect_bit_identical(run_streamed(generated, options, 999),
                             reference, (what + "/generated").c_str());

        PagedTraceReader paged(path);
        expect_bit_identical(run_streamed(paged, options, 999), reference,
                             (what + "/paged").c_str());
      }
    }
  }
  std::remove(path.c_str());
}

TEST(StreamingSimulation, HeterogeneousSourceBitIdenticalOnBothKernels) {
  CommunityTraceParams params;
  params.num_nodes = 20;
  params.duration = 400;
  params.num_communities = 4;
  params.intra_rate = 0.15;
  params.inter_rate = 0.01;
  util::Rng gen(515);
  const auto tr = generate_community_trace(params, gen);
  for (const auto kernel :
       {core::SimKernel::slot_stepped, core::SimKernel::event_driven}) {
    core::SimOptions options;
    options.cache_capacity = 3;
    options.kernel = kernel;
    const auto reference = run_materialized(tr, options, 77);
    auto source = GeneratedSource::community(params, util::Rng(515));
    expect_bit_identical(run_streamed(source, options, 77), reference,
                         core::kernel_name(kernel));
  }
}

}  // namespace
}  // namespace impatience::trace
