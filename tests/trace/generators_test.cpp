#include "impatience/trace/generators.hpp"

#include <gtest/gtest.h>

#include "impatience/stats/summary.hpp"

namespace impatience::trace {
namespace {

TEST(PoissonGenerator, MeanRateMatches) {
  util::Rng rng(1);
  PoissonTraceParams params{20, 2000, 0.05};
  const auto t = generate_poisson(params, rng);
  EXPECT_EQ(t.num_nodes(), 20u);
  EXPECT_EQ(t.duration(), 2000);
  const double measured = estimate_rates(t).mean_rate();
  EXPECT_NEAR(measured, 0.05, 0.005);
}

TEST(PoissonGenerator, MemorylessInterContacts) {
  util::Rng rng(2);
  PoissonTraceParams params{10, 5000, 0.05};
  const auto t = generate_poisson(params, rng);
  // Geometric/exponential inter-contacts: CV close to 1.
  EXPECT_NEAR(inter_contact_cv(t), 1.0, 0.15);
}

TEST(PoissonGenerator, ZeroRateEmpty) {
  util::Rng rng(3);
  const auto t = generate_poisson({5, 100, 0.0}, rng);
  EXPECT_TRUE(t.empty());
}

TEST(PoissonGenerator, RejectsBadMu) {
  util::Rng rng(4);
  EXPECT_THROW(generate_poisson({5, 100, 1.5}, rng), std::invalid_argument);
  EXPECT_THROW(generate_poisson({5, 100, -0.1}, rng), std::invalid_argument);
}

TEST(HeterogeneousGenerator, PerPairRates) {
  util::Rng rng(5);
  RateMatrix rates(3);
  rates.set(0, 1, 0.2);
  rates.set(1, 2, 0.02);
  const auto t = generate_heterogeneous(rates, 5000, rng);
  const auto est = estimate_rates(t);
  EXPECT_NEAR(est.at(0, 1), 0.2, 0.02);
  EXPECT_NEAR(est.at(1, 2), 0.02, 0.008);
  EXPECT_DOUBLE_EQ(est.at(0, 2), 0.0);
}

TEST(HeterogeneousGenerator, RejectsBadDuration) {
  util::Rng rng(6);
  EXPECT_THROW(generate_heterogeneous(RateMatrix(2), 0, rng),
               std::invalid_argument);
}

TEST(InfocomLike, DiurnalEnvelope) {
  util::Rng rng(7);
  InfocomLikeParams params;
  params.num_nodes = 30;
  params.days = 2;
  const auto t = generate_infocom_like(params, rng);
  EXPECT_EQ(t.duration(), 2 * 1440);
  // Count contacts in night vs day windows of the first day.
  std::size_t night = 0, day = 0;
  for (const auto& e : t.events()) {
    const Slot in_day = e.slot % params.slots_per_day;
    if (in_day < 480) {
      ++night;
    } else if (in_day < 1080) {
      ++day;
    }
  }
  EXPECT_GT(day, 5 * night);  // strong day/night alternation
}

TEST(InfocomLike, BurstyInterContacts) {
  util::Rng rng(8);
  InfocomLikeParams params;
  params.num_nodes = 30;
  params.days = 3;
  const auto t = generate_infocom_like(params, rng);
  // ON/OFF modulation plus the diurnal envelope must make inter-contact
  // times much more variable than memoryless contacts.
  EXPECT_GT(inter_contact_cv(t), 1.3);
}

TEST(InfocomLike, HeterogeneousPairRates) {
  util::Rng rng(9);
  InfocomLikeParams params;
  params.num_nodes = 20;
  params.days = 3;
  const auto est = estimate_rates(generate_infocom_like(params, rng));
  stats::Summary s;
  for (NodeId a = 0; a < 20; ++a) {
    for (NodeId b = a + 1; b < 20; ++b) s.add(est.at(a, b));
  }
  ASSERT_GT(s.mean(), 0.0);
  // Lognormal sigma=1 rates: pair-rate CV well above the ~0 of a
  // homogeneous trace.
  EXPECT_GT(s.stddev() / s.mean(), 0.5);
}

TEST(InfocomLike, Validation) {
  util::Rng rng(10);
  InfocomLikeParams params;
  params.days = 0;
  EXPECT_THROW(generate_infocom_like(params, rng), std::invalid_argument);
}

TEST(CabspottingLike, ProducesVehicularContacts) {
  util::Rng rng(11);
  CabspottingLikeParams params;
  params.mobility.num_nodes = 20;
  params.duration = 600;
  const auto t = generate_cabspotting_like(params, rng);
  EXPECT_EQ(t.num_nodes(), 20u);
  EXPECT_GT(t.size(), 0u);
  EXPECT_EQ(t.duration(), 600);
}

TEST(MemorylessEquivalent, PreservesPairRates) {
  util::Rng rng(12);
  InfocomLikeParams params;
  params.num_nodes = 15;
  params.days = 3;
  const auto original = generate_infocom_like(params, rng);
  const auto synthetic = memoryless_equivalent(original, rng);
  EXPECT_EQ(synthetic.num_nodes(), original.num_nodes());
  EXPECT_EQ(synthetic.duration(), original.duration());
  const auto ro = estimate_rates(original);
  const auto rs = estimate_rates(synthetic);
  stats::Summary diff;
  for (NodeId a = 0; a < 15; ++a) {
    for (NodeId b = a + 1; b < 15; ++b) {
      diff.add(rs.at(a, b) - ro.at(a, b));
    }
  }
  EXPECT_NEAR(diff.mean(), 0.0, 0.002);
}

TEST(MemorylessEquivalent, RemovesBurstiness) {
  util::Rng rng(13);
  InfocomLikeParams params;
  params.num_nodes = 20;
  params.days = 3;
  const auto original = generate_infocom_like(params, rng);
  const auto synthetic = memoryless_equivalent(original, rng);
  // Note: the *pooled* inter-contact CV of a heterogeneous memoryless
  // trace exceeds 1 (it is a mixture of exponentials), so we only assert
  // that the synthesized trace is strictly less bursty than the original.
  EXPECT_LT(inter_contact_cv(synthetic), 0.8 * inter_contact_cv(original));
}

}  // namespace
}  // namespace impatience::trace
