#include "impatience/trace/mobility.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace impatience::trace {
namespace {

RandomWaypointParams small_params() {
  RandomWaypointParams p;
  p.num_nodes = 10;
  p.area_size = 2000.0;
  p.slot_seconds = 60.0;
  return p;
}

TEST(RandomWaypoint, PositionsStayInArea) {
  util::Rng rng(1);
  auto params = small_params();
  RandomWaypointModel model(params, rng);
  for (int s = 0; s < 200; ++s) {
    model.step();
    for (const auto& pos : model.positions()) {
      EXPECT_GE(pos.x, 0.0);
      EXPECT_LE(pos.x, params.area_size);
      EXPECT_GE(pos.y, 0.0);
      EXPECT_LE(pos.y, params.area_size);
    }
  }
}

TEST(RandomWaypoint, NodesActuallyMove) {
  util::Rng rng(2);
  auto params = small_params();
  params.pause_mean_s = 0.0;
  RandomWaypointModel model(params, rng);
  const auto before = model.positions();
  model.step();
  const auto& after = model.positions();
  double moved = 0.0;
  for (std::size_t i = 0; i < before.size(); ++i) {
    moved += std::hypot(after[i].x - before[i].x, after[i].y - before[i].y);
  }
  EXPECT_GT(moved, 0.0);
}

TEST(RandomWaypoint, SpeedBoundsRespected) {
  util::Rng rng(3);
  auto params = small_params();
  params.pause_mean_s = 0.0;
  params.speed_min = 10.0;
  params.speed_max = 10.0;  // fixed speed
  params.area_size = 100000.0;  // effectively no waypoint arrivals
  RandomWaypointModel model(params, rng);
  auto before = model.positions();
  model.step();
  const auto& after = model.positions();
  for (std::size_t i = 0; i < before.size(); ++i) {
    const double d =
        std::hypot(after[i].x - before[i].x, after[i].y - before[i].y);
    // At most speed * slot_seconds (less if a waypoint was reached).
    EXPECT_LE(d, 10.0 * 60.0 + 1e-6);
  }
}

TEST(RandomWaypoint, HotspotCountRespected) {
  util::Rng rng(4);
  auto params = small_params();
  params.num_hotspots = 3;
  RandomWaypointModel model(params, rng);
  EXPECT_EQ(model.hotspots().size(), 3u);
  params.num_hotspots = 0;
  RandomWaypointModel flat(params, rng);
  EXPECT_TRUE(flat.hotspots().empty());
}

TEST(RandomWaypoint, Validation) {
  util::Rng rng(5);
  auto params = small_params();
  params.num_nodes = 0;
  EXPECT_THROW(RandomWaypointModel(params, rng), std::invalid_argument);
  params = small_params();
  params.speed_max = params.speed_min - 1.0;
  EXPECT_THROW(RandomWaypointModel(params, rng), std::invalid_argument);
}

TEST(MobilityTrace, OnsetSemantics) {
  util::Rng rng(6);
  auto params = small_params();
  params.num_nodes = 15;
  params.area_size = 1500.0;  // dense: frequent contacts
  const auto t = generate_mobility_trace(params, 500, 200.0, rng);
  EXPECT_EQ(t.num_nodes(), 15u);
  EXPECT_GT(t.size(), 0u);
  // Onset-only extraction: a pair cannot have two events in consecutive
  // slots (they would be one ongoing contact).
  const auto& ev = t.events();
  for (std::size_t i = 0; i < ev.size(); ++i) {
    for (std::size_t j = i + 1; j < ev.size(); ++j) {
      if (ev[j].a == ev[i].a && ev[j].b == ev[i].b) {
        EXPECT_NE(ev[j].slot, ev[i].slot + 1)
            << "onset events in consecutive slots for the same pair";
        break;
      }
    }
  }
}

TEST(MobilityTrace, HotspotsIncreaseContactRate) {
  auto params = small_params();
  params.num_nodes = 20;
  params.area_size = 8000.0;
  params.num_hotspots = 2;
  params.hotspot_prob = 0.9;
  util::Rng rng1(7), rng2(7);
  const auto clustered = generate_mobility_trace(params, 1000, 200.0, rng1);
  params.num_hotspots = 0;
  const auto flat = generate_mobility_trace(params, 1000, 200.0, rng2);
  EXPECT_GT(clustered.size(), flat.size());
}

TEST(MobilityTrace, DutyCycleSuppressesContacts) {
  auto params = small_params();
  params.num_nodes = 20;
  params.area_size = 1500.0;
  params.duty_on_mean_s = 4.0 * 3600.0;
  params.duty_off_mean_s = 4.0 * 3600.0;  // half the fleet parked
  util::Rng rng1(9), rng2(9);
  const auto cycled = generate_mobility_trace(params, 800, 200.0, rng1);
  params.duty_off_mean_s = 0.0;  // always on
  const auto always_on = generate_mobility_trace(params, 800, 200.0, rng2);
  EXPECT_LT(cycled.size(), always_on.size());
  EXPECT_GT(cycled.size(), 0u);
}

TEST(MobilityTrace, ZeroOffDutyMatchesAlwaysOnSemantics) {
  auto params = small_params();
  params.duty_off_mean_s = 0.0;
  util::Rng rng(10);
  const auto t = generate_mobility_trace(params, 300, 250.0, rng);
  EXPECT_GT(t.size(), 0u);
}

TEST(MobilityTrace, Validation) {
  util::Rng rng(8);
  EXPECT_THROW(generate_mobility_trace(small_params(), 0, 200.0, rng),
               std::invalid_argument);
  EXPECT_THROW(generate_mobility_trace(small_params(), 100, 0.0, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace impatience::trace
