#include "impatience/trace/stats.hpp"

#include <gtest/gtest.h>

namespace impatience::trace {
namespace {

TEST(RateMatrix, SymmetricSetGet) {
  RateMatrix m(4);
  m.set(1, 3, 0.25);
  EXPECT_DOUBLE_EQ(m.at(1, 3), 0.25);
  EXPECT_DOUBLE_EQ(m.at(3, 1), 0.25);
  EXPECT_DOUBLE_EQ(m.at(0, 2), 0.0);
}

TEST(RateMatrix, DiagonalStaysZero) {
  RateMatrix m(3, 0.5);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 0.0);
  m.set(2, 2, 0.9);
  EXPECT_DOUBLE_EQ(m.at(2, 2), 0.0);
}

TEST(RateMatrix, NodeRate) {
  RateMatrix m(3);
  m.set(0, 1, 0.1);
  m.set(0, 2, 0.3);
  EXPECT_NEAR(m.node_rate(0), 0.4, 1e-15);
  EXPECT_NEAR(m.node_rate(1), 0.1, 1e-15);
}

TEST(RateMatrix, MeanRate) {
  RateMatrix m(3);
  m.set(0, 1, 0.3);
  m.set(0, 2, 0.0);
  m.set(1, 2, 0.6);
  EXPECT_NEAR(m.mean_rate(), 0.3, 1e-15);
}

TEST(RateMatrix, HomogeneousFactory) {
  const auto m = RateMatrix::homogeneous(5, 0.05);
  EXPECT_DOUBLE_EQ(m.at(0, 4), 0.05);
  EXPECT_DOUBLE_EQ(m.at(2, 2), 0.0);
  EXPECT_NEAR(m.mean_rate(), 0.05, 1e-15);
}

TEST(RateMatrix, Validation) {
  EXPECT_THROW(RateMatrix(0), std::invalid_argument);
  RateMatrix m(2);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.set(0, 2, 0.1), std::out_of_range);
  EXPECT_THROW(m.set(0, 1, -0.1), std::invalid_argument);
}

TEST(EstimateRates, CountsOverDuration) {
  ContactTrace t(3, 10, {{0, 0, 1}, {5, 0, 1}, {7, 1, 2}});
  const auto m = estimate_rates(t);
  EXPECT_NEAR(m.at(0, 1), 0.2, 1e-15);
  EXPECT_NEAR(m.at(1, 2), 0.1, 1e-15);
  EXPECT_NEAR(m.at(0, 2), 0.0, 1e-15);
}

TEST(InterContactTimes, PooledGaps) {
  ContactTrace t(3, 20, {{0, 0, 1}, {4, 0, 1}, {10, 0, 1}, {3, 1, 2}});
  auto gaps = inter_contact_times(t);
  ASSERT_EQ(gaps.size(), 2u);  // pair (1,2) meets only once: no gap
  EXPECT_DOUBLE_EQ(gaps[0], 4.0);
  EXPECT_DOUBLE_EQ(gaps[1], 6.0);
}

TEST(InterContactCv, DegenerateCases) {
  ContactTrace none(3, 10, {});
  EXPECT_DOUBLE_EQ(inter_contact_cv(none), 0.0);
  ContactTrace one_gap(2, 10, {{0, 0, 1}, {5, 0, 1}});
  EXPECT_DOUBLE_EQ(inter_contact_cv(one_gap), 0.0);  // single sample
}

TEST(InterContactCv, RegularContactsHaveLowCv) {
  std::vector<ContactEvent> events;
  for (Slot s = 0; s < 100; s += 10) events.push_back({s, 0, 1});
  ContactTrace t(2, 100, std::move(events));
  EXPECT_NEAR(inter_contact_cv(t), 0.0, 1e-12);
}

TEST(ContactsPerSlot, Counts) {
  ContactTrace t(3, 4, {{0, 0, 1}, {0, 1, 2}, {2, 0, 2}});
  const auto series = contacts_per_slot(t);
  ASSERT_EQ(series.size(), 4u);
  EXPECT_EQ(series[0], 2u);
  EXPECT_EQ(series[1], 0u);
  EXPECT_EQ(series[2], 1u);
  EXPECT_EQ(series[3], 0u);
}

}  // namespace
}  // namespace impatience::trace
