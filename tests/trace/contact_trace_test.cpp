#include "impatience/trace/contact.hpp"

#include <gtest/gtest.h>

#include "impatience/util/rng.hpp"

namespace impatience::trace {
namespace {

TEST(ContactTrace, SortsAndCanonicalizes) {
  ContactTrace t(5, 10, {{3, 4, 1}, {1, 0, 2}, {1, 2, 0}});
  ASSERT_EQ(t.size(), 2u);  // duplicate (1,0,2)/(1,2,0) collapses
  EXPECT_EQ(t.events()[0], (ContactEvent{1, 0, 2}));
  EXPECT_EQ(t.events()[1], (ContactEvent{3, 1, 4}));
}

TEST(ContactTrace, DropsSelfContacts) {
  ContactTrace t(3, 5, {{0, 1, 1}, {1, 0, 2}});
  EXPECT_EQ(t.size(), 1u);
}

TEST(ContactTrace, SlotEvents) {
  ContactTrace t(4, 6, {{0, 0, 1}, {2, 1, 2}, {2, 0, 3}, {5, 2, 3}});
  EXPECT_EQ(t.slot_events(0).size(), 1u);
  EXPECT_EQ(t.slot_events(1).size(), 0u);
  EXPECT_EQ(t.slot_events(2).size(), 2u);
  EXPECT_EQ(t.slot_events(5).size(), 1u);
  EXPECT_EQ(t.slot_events(-1).size(), 0u);
  EXPECT_EQ(t.slot_events(6).size(), 0u);
}

TEST(ContactTrace, SlotEventsCoverWholeTrace) {
  ContactTrace t(4, 10, {{0, 0, 1}, {3, 1, 2}, {3, 0, 2}, {9, 2, 3}});
  std::size_t total = 0;
  for (Slot s = 0; s < t.duration(); ++s) total += t.slot_events(s).size();
  EXPECT_EQ(total, t.size());
}

TEST(ContactTrace, SliceRebases) {
  ContactTrace t(4, 10, {{1, 0, 1}, {4, 1, 2}, {8, 2, 3}});
  const auto sub = t.slice(3, 9);
  EXPECT_EQ(sub.duration(), 6);
  ASSERT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.events()[0], (ContactEvent{1, 1, 2}));
  EXPECT_EQ(sub.events()[1], (ContactEvent{5, 2, 3}));
}

TEST(ContactTrace, SliceValidation) {
  ContactTrace t(2, 10, {});
  EXPECT_THROW(t.slice(-1, 5), std::invalid_argument);
  EXPECT_THROW(t.slice(0, 11), std::invalid_argument);
  EXPECT_THROW(t.slice(5, 5), std::invalid_argument);
}

TEST(ContactTrace, PairCountIsUnordered) {
  ContactTrace t(3, 10, {{0, 0, 1}, {2, 1, 0}, {4, 1, 2}});
  EXPECT_EQ(t.pair_count(0, 1), 2u);
  EXPECT_EQ(t.pair_count(1, 0), 2u);
  EXPECT_EQ(t.pair_count(0, 2), 0u);
}

TEST(ContactTrace, RejectsBadInputs) {
  EXPECT_THROW(ContactTrace(0, 10, {}), std::invalid_argument);
  EXPECT_THROW(ContactTrace(2, 0, {}), std::invalid_argument);
  EXPECT_THROW(ContactTrace(2, 10, {{10, 0, 1}}), std::invalid_argument);
  EXPECT_THROW(ContactTrace(2, 10, {{-1, 0, 1}}), std::invalid_argument);
  EXPECT_THROW(ContactTrace(2, 10, {{0, 0, 2}}), std::invalid_argument);
}

TEST(ContactTrace, EmptyTraceIsFine) {
  ContactTrace t(3, 100, {});
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.slot_events(50).size(), 0u);
  EXPECT_TRUE(t.pair_counts().empty());
}

TEST(ContactTrace, PairCountsMatchBruteForce) {
  // The one-pass pair index must agree with a per-pair event scan on a
  // randomized trace.
  util::Rng rng(123);
  const NodeId nodes = 9;
  std::vector<ContactEvent> events;
  for (int k = 0; k < 400; ++k) {
    events.push_back({static_cast<Slot>(rng.uniform_index(50)),
                      static_cast<NodeId>(rng.uniform_index(nodes)),
                      static_cast<NodeId>(rng.uniform_index(nodes))});
  }
  ContactTrace t(nodes, 50, std::move(events));

  std::size_t indexed_total = 0;
  for (const auto& pc : t.pair_counts()) {
    EXPECT_LT(pc.a, pc.b);
    EXPECT_GT(pc.count, 0u);
    indexed_total += pc.count;
  }
  EXPECT_EQ(indexed_total, t.size());

  for (NodeId a = 0; a < nodes; ++a) {
    for (NodeId b = static_cast<NodeId>(a + 1); b < nodes; ++b) {
      std::size_t brute = 0;
      for (const auto& e : t.events()) {
        if (e.a == a && e.b == b) ++brute;
      }
      EXPECT_EQ(t.pair_count(a, b), brute) << "pair (" << a << "," << b << ")";
      EXPECT_EQ(t.pair_count(b, a), brute);
    }
  }
}

TEST(ContactTrace, PairCountsAreSorted) {
  ContactTrace t(4, 5, {{0, 2, 3}, {1, 0, 1}, {2, 2, 3}, {3, 0, 3}});
  const auto& pc = t.pair_counts();
  ASSERT_EQ(pc.size(), 3u);
  EXPECT_EQ(pc[0], (PairContacts{0, 1, 1}));
  EXPECT_EQ(pc[1], (PairContacts{0, 3, 1}));
  EXPECT_EQ(pc[2], (PairContacts{2, 3, 2}));
}

TEST(ContactTrace, FirstEventAtOrAfterBoundaries) {
  // Empty trace: every query lands at size() == 0.
  ContactTrace empty(3, 100, {});
  EXPECT_EQ(empty.first_event_at_or_after(0), 0u);
  EXPECT_EQ(empty.first_event_at_or_after(50), 0u);
  EXPECT_EQ(empty.first_event_at_or_after(99), 0u);

  ContactTrace t(4, 20, {{5, 0, 1}, {5, 1, 2}, {9, 2, 3}, {15, 0, 3}});
  // Slot before the first event: index 0.
  EXPECT_EQ(t.first_event_at_or_after(0), 0u);
  EXPECT_EQ(t.first_event_at_or_after(4), 0u);
  // Exact hits and gaps between events.
  EXPECT_EQ(t.first_event_at_or_after(5), 0u);
  EXPECT_EQ(t.first_event_at_or_after(6), 2u);
  EXPECT_EQ(t.first_event_at_or_after(9), 2u);
  EXPECT_EQ(t.first_event_at_or_after(10), 3u);
  EXPECT_EQ(t.first_event_at_or_after(15), 3u);
  // Slot past the last event (still inside the trace): size().
  EXPECT_EQ(t.first_event_at_or_after(16), t.size());
  EXPECT_EQ(t.first_event_at_or_after(19), t.size());
}

TEST(ContactTrace, FirstEventAtOrAfterMatchesLinearScan) {
  util::Rng rng(99);
  std::vector<ContactEvent> events;
  for (int k = 0; k < 250; ++k) {
    events.push_back({static_cast<Slot>(rng.uniform_index(60)),
                      static_cast<NodeId>(rng.uniform_index(7)),
                      static_cast<NodeId>(rng.uniform_index(7))});
  }
  ContactTrace t(7, 60, std::move(events));
  for (Slot s = 0; s < t.duration(); ++s) {
    std::size_t brute = 0;
    while (brute < t.size() && t.events()[brute].slot < s) ++brute;
    EXPECT_EQ(t.first_event_at_or_after(s), brute) << "slot " << s;
  }
}

TEST(ContactTrace, SliceMatchesEventFilter) {
  // The slot-index slice must equal filtering the event list by slot.
  util::Rng rng(7);
  std::vector<ContactEvent> events;
  for (int k = 0; k < 300; ++k) {
    events.push_back({static_cast<Slot>(rng.uniform_index(40)),
                      static_cast<NodeId>(rng.uniform_index(6)),
                      static_cast<NodeId>(rng.uniform_index(6))});
  }
  ContactTrace t(6, 40, std::move(events));
  for (const auto& [from, to] :
       {std::pair<Slot, Slot>{0, 40}, {5, 12}, {39, 40}, {0, 1}, {17, 23}}) {
    const auto sub = t.slice(from, to);
    std::vector<ContactEvent> expected;
    for (const auto& e : t.events()) {
      if (e.slot >= from && e.slot < to) {
        expected.push_back({e.slot - from, e.a, e.b});
      }
    }
    EXPECT_EQ(sub.events(), expected) << "slice [" << from << "," << to << ")";
    EXPECT_EQ(sub.duration(), to - from);
  }
}

}  // namespace
}  // namespace impatience::trace
