#include "impatience/trace/parsers.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace impatience::trace {
namespace {

TEST(CrawdadParser, FourColumnOnset) {
  std::istringstream in(
      "# comment line\n"
      "10 20 0 120\n"
      "10 30 60 100\n"
      "20 30 300 400\n");
  CrawdadOptions opt;
  opt.slot_seconds = 60.0;
  const auto t = parse_crawdad(in, opt);
  EXPECT_EQ(t.num_nodes(), 3u);  // dense remap of {10, 20, 30}
  ASSERT_EQ(t.size(), 3u);
  // First contact starts at t=0 -> slot 0; third starts at 300s -> slot 5.
  EXPECT_EQ(t.events()[0].slot, 0);
  EXPECT_EQ(t.events()[1].slot, 1);
  EXPECT_EQ(t.events()[2].slot, 5);
}

TEST(CrawdadParser, EverySlotExpansion) {
  std::istringstream in("1 2 0 180\n");
  CrawdadOptions opt;
  opt.slot_seconds = 60.0;
  opt.expansion = ContactExpansion::kEverySlot;
  const auto t = parse_crawdad(in, opt);
  // Contact [0, 180] spans slots 0..3.
  EXPECT_EQ(t.size(), 4u);
}

TEST(CrawdadParser, ThreeColumnFormat) {
  std::istringstream in(
      "0 5 6\n"
      "120 5 7\n");
  const auto t = parse_crawdad(in, CrawdadOptions{});
  EXPECT_EQ(t.num_nodes(), 3u);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t.events()[1].slot, 2);
}

TEST(CrawdadParser, TimeRebasing) {
  // Start times far from zero are rebased to slot 0.
  std::istringstream in("1 2 100000 100060\n1 3 100120 100130\n");
  const auto t = parse_crawdad(in, CrawdadOptions{});
  EXPECT_EQ(t.events()[0].slot, 0);
  EXPECT_EQ(t.events()[1].slot, 2);
}

TEST(CrawdadParser, Malformed) {
  std::istringstream bad_cols("1 2\n");
  EXPECT_THROW(parse_crawdad(bad_cols, CrawdadOptions{}), std::runtime_error);
  std::istringstream non_numeric("a b c d\n");
  EXPECT_THROW(parse_crawdad(non_numeric, CrawdadOptions{}),
               std::runtime_error);
  std::istringstream empty("# nothing\n");
  EXPECT_THROW(parse_crawdad(empty, CrawdadOptions{}), std::runtime_error);
  std::istringstream reversed("1 2 100 50\n");
  EXPECT_THROW(parse_crawdad(reversed, CrawdadOptions{}), std::runtime_error);
}

TEST(CrawdadParser, MissingFileThrows) {
  EXPECT_THROW(parse_crawdad_file("/no/such/file", CrawdadOptions{}),
               std::runtime_error);
}

TEST(NativeFormat, RoundTrip) {
  ContactTrace original(4, 100, {{0, 0, 1}, {5, 2, 3}, {99, 0, 3}});
  std::stringstream buffer;
  write_native(original, buffer);
  const auto parsed = read_native(buffer);
  EXPECT_EQ(parsed.num_nodes(), original.num_nodes());
  EXPECT_EQ(parsed.duration(), original.duration());
  EXPECT_EQ(parsed.events(), original.events());
}

TEST(NativeFormat, FileRoundTrip) {
  const std::string path =
      ::testing::TempDir() + "/impatience_native_roundtrip.trace";
  ContactTrace original(5, 60, {{1, 0, 4}, {7, 2, 3}, {59, 1, 2}});
  write_native_file(original, path);
  const auto parsed = read_native_file(path);
  EXPECT_EQ(parsed.num_nodes(), original.num_nodes());
  EXPECT_EQ(parsed.duration(), original.duration());
  EXPECT_EQ(parsed.events(), original.events());
  EXPECT_THROW(read_native_file("/no/such/dir/x.trace"),
               std::runtime_error);
  EXPECT_THROW(write_native_file(original, "/no/such/dir/x.trace"),
               std::runtime_error);
}

TEST(NativeFormat, HeaderValidation) {
  std::istringstream missing("0 1 2\n");
  EXPECT_THROW(read_native(missing), std::runtime_error);
  std::istringstream bad("nodes -3 duration 10\n");
  EXPECT_THROW(read_native(bad), std::runtime_error);
}

TEST(GpsParser, StationaryNodesInRange) {
  // Two nodes 100 m apart for 10 minutes: one onset contact.
  std::ostringstream data;
  for (int k = 0; k <= 10; ++k) {
    data << "1 " << k * 60 << " 0 0\n";
    data << "2 " << k * 60 << " 100 0\n";
  }
  std::istringstream in(data.str());
  GpsOptions opt;
  const auto t = parse_gps(in, opt);
  EXPECT_EQ(t.num_nodes(), 2u);
  EXPECT_EQ(t.size(), 1u);  // onset only
}

TEST(GpsParser, EverySlotExpansion) {
  std::ostringstream data;
  for (int k = 0; k <= 5; ++k) {
    data << "1 " << k * 60 << " 0 0\n"
         << "2 " << k * 60 << " 50 0\n";
  }
  std::istringstream in(data.str());
  GpsOptions opt;
  opt.expansion = ContactExpansion::kEverySlot;
  const auto t = parse_gps(in, opt);
  EXPECT_EQ(t.size(), 6u);
}

TEST(GpsParser, OutOfRangeNoContact) {
  std::ostringstream data;
  for (int k = 0; k <= 5; ++k) {
    data << "1 " << k * 60 << " 0 0\n"
         << "2 " << k * 60 << " 500 0\n";
  }
  std::istringstream in(data.str());
  const auto t = parse_gps(in, GpsOptions{});
  EXPECT_TRUE(t.empty());
}

TEST(GpsParser, GapSuppressesInterpolation) {
  // Fixes 2 hours apart with max_gap 10 min: no positions in between, so
  // the nodes can never be in contact mid-gap.
  std::istringstream in(
      "1 0 0 0\n1 7200 0 0\n"
      "2 0 50 0\n2 7200 5000 0\n");
  GpsOptions opt;
  opt.max_gap_seconds = 600.0;
  const auto t = parse_gps(in, opt);
  EXPECT_TRUE(t.empty());
}

TEST(GpsParser, ReMeetingAfterSeparation) {
  // In range, out of range, back in range: two onset events.
  std::ostringstream data;
  const double xs[] = {0, 0, 1000, 1000, 0, 0};
  for (int k = 0; k < 6; ++k) {
    data << "1 " << k * 60 << " 0 0\n"
         << "2 " << k * 60 << " " << xs[k] << " 0\n";
  }
  std::istringstream in(data.str());
  const auto t = parse_gps(in, GpsOptions{});
  EXPECT_EQ(t.size(), 2u);
}

TEST(GpsParser, LatLonProjection) {
  // ~111 m per 0.001 degree latitude: in range at 200 m.
  std::ostringstream data;
  for (int k = 0; k <= 3; ++k) {
    data << "1 " << k * 60 << " 37.7750 -122.4190\n"
         << "2 " << k * 60 << " 37.7760 -122.4190\n";
  }
  std::istringstream in(data.str());
  GpsOptions opt;
  opt.coordinates_are_latlon = true;
  const auto t = parse_gps(in, opt);
  EXPECT_EQ(t.size(), 1u);
}

TEST(GpsParser, Malformed) {
  std::istringstream bad("1 0 0\n");
  EXPECT_THROW(parse_gps(bad, GpsOptions{}), std::runtime_error);
  std::istringstream empty("");
  EXPECT_THROW(parse_gps(empty, GpsOptions{}), std::runtime_error);
}

TEST(OneParser, ConnUpDownPairs) {
  std::istringstream in(
      "# ONE StandardEventsReader\n"
      "10.0 CONN 3 7 up\n"
      "130.0 CONN 3 7 down\n"
      "200.0 CONN 7 9 up\n"
      "260.0 CONN 9 7 down\n");
  const auto t = parse_one_events(in, OneOptions{});
  EXPECT_EQ(t.num_nodes(), 3u);  // {3, 7, 9} remapped
  ASSERT_EQ(t.size(), 2u);       // onset-only
  EXPECT_EQ(t.events()[0].slot, 0);
  // Second contact starts 190 s after the first: slot 3 at 60 s/slot.
  EXPECT_EQ(t.events()[1].slot, 3);
}

TEST(OneParser, IgnoresOtherEventTypes) {
  std::istringstream in(
      "0 CONN 1 2 up\n"
      "30 C 1 M14\n"
      "45 S 2 M14\n"
      "60 CONN 1 2 down\n");
  const auto t = parse_one_events(in, OneOptions{});
  EXPECT_EQ(t.size(), 1u);
}

TEST(OneParser, UnclosedConnectionsEndAtLastTimestamp) {
  std::istringstream in(
      "0 CONN 1 2 up\n"
      "600 CONN 3 4 up\n"
      "900 CONN 3 4 down\n");
  OneOptions opt;
  opt.expansion = ContactExpansion::kEverySlot;
  const auto t = parse_one_events(in, opt);
  // Pair (1,2) spans [0, 900] -> slots 0..15 (16 events);
  // pair (3,4) spans [600, 900] -> slots 10..15 (6 events).
  EXPECT_EQ(t.size(), 22u);
}

TEST(OneParser, DownWithoutUpIsIgnored) {
  std::istringstream in(
      "0 CONN 1 2 down\n"
      "10 CONN 1 2 up\n"
      "70 CONN 1 2 down\n");
  const auto t = parse_one_events(in, OneOptions{});
  EXPECT_EQ(t.size(), 1u);
}

TEST(OneParser, Malformed) {
  std::istringstream bad_state("0 CONN 1 2 sideways\n");
  EXPECT_THROW(parse_one_events(bad_state, OneOptions{}),
               std::runtime_error);
  std::istringstream no_conn("5 M14 created\n");
  EXPECT_THROW(parse_one_events(no_conn, OneOptions{}), std::runtime_error);
  std::istringstream empty("# header only\n");
  EXPECT_THROW(parse_one_events(empty, OneOptions{}), std::runtime_error);
  EXPECT_THROW(parse_one_events_file("/no/such/file", OneOptions{}),
               std::runtime_error);
}

}  // namespace
}  // namespace impatience::trace
