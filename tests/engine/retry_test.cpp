// Hardened-runner behavior: bounded retry with per-attempt reseeding,
// quarantine, the deadline watchdog, typed error classification, and
// manifest-based resume.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "impatience/engine/artifacts.hpp"
#include "impatience/engine/resume.hpp"
#include "impatience/engine/runner.hpp"
#include "impatience/engine/seeding.hpp"
#include "impatience/engine/watchdog.hpp"
#include "impatience/util/errors.hpp"

namespace impatience::engine {
namespace {

JobSpec seeded_job(const std::string& policy, int trial,
                   std::uint64_t root = 42) {
  JobSpec job;
  job.scenario = "retry-test";
  job.policy = policy;
  job.trial = trial;
  job.seed = child_seed(root, policy, trial);
  job.run = [](util::Rng& rng) { return rng.uniform(); };
  return job;
}

TEST(Retry, TransientFailureSucceedsWithReseededRng) {
  auto fails_remaining = std::make_shared<std::atomic<int>>(2);
  JobSpec job = seeded_job("flaky", 0);
  const std::uint64_t seed = job.seed;
  job.run = [fails_remaining](util::Rng& rng) {
    if (fails_remaining->fetch_sub(1) > 0) {
      throw std::runtime_error("transient");
    }
    return rng.uniform();
  };

  const Runner runner({.threads = 1, .max_attempts = 3,
                       .backoff_base_seconds = 0.0});
  const auto report = runner.run({job});

  ASSERT_EQ(report.jobs.size(), 1u);
  const auto& r = report.jobs[0].result;
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.attempts, 3);
  EXPECT_FALSE(r.quarantined);
  EXPECT_EQ(report.failed, 0u);
  // The Rng is reseeded per attempt, so a third-try success returns the
  // same value a first-try success would have.
  util::Rng fresh(seed);
  EXPECT_EQ(r.value, fresh.uniform());
}

TEST(Retry, ExhaustedAttemptsQuarantineTheJob) {
  JobSpec job = seeded_job("doomed", 0);
  job.run = [](util::Rng&) -> double {
    throw std::runtime_error("permanent");
  };

  const Runner runner({.threads = 1, .max_attempts = 2,
                       .backoff_base_seconds = 0.0});
  const auto report = runner.run({job});

  const auto& r = report.jobs[0].result;
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.quarantined);
  EXPECT_EQ(r.attempts, 2);
  EXPECT_EQ(r.error_kind, ErrorKind::job_exception);
  EXPECT_EQ(r.error, "permanent");
  EXPECT_EQ(report.failed, 1u);
  EXPECT_EQ(report.quarantined, 1u);
}

TEST(Retry, WatchdogCancelsOverrunningJob) {
  JobSpec job = seeded_job("slow", 0);
  job.run_cancellable = [](util::Rng&,
                           const util::CancellationToken& cancel) -> double {
    // Cooperative loop: the deadline watchdog fires the token.
    for (int i = 0; i < 100000; ++i) {
      if (cancel.cancelled()) {
        throw util::CancelledError("slow job: cancelled");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return 0.0;
  };

  const Runner runner({.threads = 1, .job_deadline_seconds = 0.05,
                       .backoff_base_seconds = 0.0});
  const auto report = runner.run({job});

  const auto& r = report.jobs[0].result;
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error_kind, ErrorKind::timeout);
  EXPECT_EQ(report.failed, 1u);
}

TEST(Retry, ShutdownCancellationClassifiesAsShutdownNotTimeout) {
  // Service-mode jobs unwind with a shutdown-reason CancelledError when
  // the operator stops them (SIGTERM); the manifest must say "shutdown",
  // not the generic deadline kind — an operator stop is not a blown
  // budget. Regression for the reason-blind classification.
  JobSpec job = seeded_job("service", 0);
  job.run = [](util::Rng&) -> double {
    throw util::CancelledError("stopped by operator",
                               util::CancelReason::shutdown);
  };

  const Runner runner({.threads = 1, .backoff_base_seconds = 0.0});
  const auto report = runner.run({job});

  const auto& r = report.jobs[0].result;
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error_kind, ErrorKind::shutdown);
  EXPECT_EQ(to_string(ErrorKind::shutdown), std::string("shutdown"));
  EXPECT_EQ(error_kind_from_string("shutdown"), ErrorKind::shutdown);
}

TEST(Retry, WatchdogReasonPropagatesIntoCancelledError) {
  // The hoisted watchdog can arm with a configurable reason; the token
  // carries the first cancel's reason and cancelled_error() preserves it.
  util::CancellationToken token;
  {
    DeadlineWatchdog watchdog(10.0);
    watchdog.arm(&token, 0.01, util::CancelReason::shutdown);
    while (!token.cancelled()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_EQ(token.reason(), util::CancelReason::shutdown);
  const auto error = util::cancelled_error(token, "stop");
  EXPECT_EQ(error.reason(), util::CancelReason::shutdown);
  EXPECT_EQ(error_kind_from_cancel(token.reason()), ErrorKind::shutdown);
  EXPECT_EQ(error_kind_from_cancel(util::CancelReason::deadline),
            ErrorKind::timeout);

  // First reason wins: a later deadline cancel cannot flip it.
  token.cancel(util::CancelReason::deadline);
  EXPECT_EQ(token.reason(), util::CancelReason::shutdown);
}

TEST(Retry, TypedExceptionsClassifyIntoErrorKinds) {
  JobSpec io = seeded_job("io", 0);
  io.run = [](util::Rng&) -> double { throw util::IoError("disk gone"); };
  JobSpec budget = seeded_job("budget", 0);
  budget.run = [](util::Rng&) -> double {
    throw util::FaultBudgetError("too many faults");
  };

  const Runner runner({.threads = 1, .backoff_base_seconds = 0.0});
  const auto report = runner.run({io, budget});

  EXPECT_EQ(report.jobs[0].result.error_kind, ErrorKind::io);
  EXPECT_EQ(report.jobs[1].result.error_kind,
            ErrorKind::fault_budget_exceeded);
}

TEST(Retry, ResumeSkipsCompletedJobsAndReplaysValues) {
  const std::string manifest =
      testing::TempDir() + "impatience_retry_resume_manifest.json";
  std::remove(manifest.c_str());

  // First run: three jobs succeed, one fails every attempt.
  std::vector<JobSpec> jobs;
  for (int t = 0; t < 3; ++t) jobs.push_back(seeded_job("stable", t));
  JobSpec broken = seeded_job("broken", 0);
  broken.run = [](util::Rng&) -> double { throw std::runtime_error("boom"); };
  jobs.push_back(broken);

  const Runner runner({.threads = 2, .backoff_base_seconds = 0.0});
  const auto first = runner.run(jobs, 42);
  EXPECT_EQ(first.failed, 1u);
  write_manifest_file(manifest, first, {"retry_test", {}});

  const ResumeSet resume = load_resume_set(manifest);
  EXPECT_EQ(resume.size(), 3u);

  // Second run: the completed jobs must not execute again.
  auto executions = std::make_shared<std::atomic<int>>(0);
  std::vector<JobSpec> again;
  for (int t = 0; t < 3; ++t) {
    JobSpec job = seeded_job("stable", t);
    auto inner = job.run;
    job.run = [executions, inner](util::Rng& rng) {
      executions->fetch_add(1);
      return inner(rng);
    };
    again.push_back(job);
  }
  JobSpec fixed = seeded_job("broken", 0);
  auto inner = fixed.run;
  fixed.run = [executions, inner](util::Rng& rng) {
    executions->fetch_add(1);
    return inner(rng);
  };
  again.push_back(fixed);

  const auto second = runner.run(again, 42, &resume);
  EXPECT_EQ(executions->load(), 1);  // only the previously failed job ran
  EXPECT_EQ(second.resumed, 3u);
  EXPECT_EQ(second.failed, 0u);
  for (int t = 0; t < 3; ++t) {
    EXPECT_TRUE(second.jobs[t].result.resumed);
    // Replayed value matches the first run's record bit-for-bit.
    EXPECT_EQ(second.jobs[t].result.value, first.jobs[t].result.value);
  }
  EXPECT_FALSE(second.jobs[3].result.resumed);
  EXPECT_TRUE(second.jobs[3].result.ok);
  std::remove(manifest.c_str());
}

TEST(Retry, ThirtyPercentTransientFailureBatchCompletes) {
  // 10 jobs, 3 of which fail on their first attempt: with retries the
  // whole batch completes and produces a fully resumable manifest.
  std::vector<JobSpec> jobs;
  std::vector<std::shared_ptr<std::atomic<int>>> gates;
  for (int t = 0; t < 10; ++t) {
    JobSpec job = seeded_job("mixed", t);
    if (t % 3 == 0 && t > 0) {  // t = 3, 6, 9
      auto gate = std::make_shared<std::atomic<int>>(1);
      gates.push_back(gate);
      auto inner = job.run;
      job.run = [gate, inner](util::Rng& rng) {
        if (gate->fetch_sub(1) > 0) throw std::runtime_error("transient");
        return inner(rng);
      };
    }
    jobs.push_back(job);
  }

  const Runner runner({.threads = 4, .max_attempts = 3,
                       .backoff_base_seconds = 0.0});
  const auto report = runner.run(jobs, 7);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.quarantined, 0u);

  const std::string manifest =
      testing::TempDir() + "impatience_retry_batch_manifest.json";
  std::remove(manifest.c_str());
  write_manifest_file(manifest, report, {"retry_test", {}});
  const ResumeSet resume = load_resume_set(manifest);
  EXPECT_EQ(resume.size(), 10u);
  std::remove(manifest.c_str());
}

}  // namespace
}  // namespace impatience::engine
