#include "impatience/engine/seeding.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "impatience/util/rng.hpp"

namespace impatience::engine {
namespace {

TEST(Seeding, Fnv1a64KnownVectors) {
  // Published FNV-1a test vectors: stability across platforms/releases.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Seeding, ChildSeedIsPureFunction) {
  EXPECT_EQ(child_seed(42, "QCR", 3), child_seed(42, "QCR", 3));
  EXPECT_EQ(child_seed(7, "placement", 0, 5),
            child_seed(7, "placement", 0, 5));
}

TEST(Seeding, ChildSeedSeparatesEveryComponent) {
  const std::uint64_t base = child_seed(42, "QCR", 3, 1);
  EXPECT_NE(base, child_seed(43, "QCR", 3, 1));   // root
  EXPECT_NE(base, child_seed(42, "OPT", 3, 1));   // tag
  EXPECT_NE(base, child_seed(42, "QCR", 4, 1));   // a
  EXPECT_NE(base, child_seed(42, "QCR", 3, 2));   // b
}

TEST(Seeding, NoDuplicatesAcross10kJobs) {
  // The sweep shape the benches use: policies x trials x points.
  const std::vector<std::string> policies{"OPT", "UNI", "SQRT", "PROP",
                                          "DOM", "QCR", "placement", "rule"};
  std::set<std::uint64_t> seeds;
  std::size_t jobs = 0;
  for (const auto& policy : policies) {
    for (std::uint64_t trial = 0; trial < 25; ++trial) {
      for (std::uint64_t point = 0; point < 50; ++point) {
        seeds.insert(child_seed(2009, policy, trial, point));
        ++jobs;
      }
    }
  }
  EXPECT_EQ(jobs, 10000u);
  EXPECT_EQ(seeds.size(), jobs);
}

TEST(Seeding, SiblingStreamsAreStatisticallyIndependent) {
  // Consecutive trial indices must not produce correlated Rng streams.
  util::Rng a(child_seed(123, "QCR", 0));
  util::Rng b(child_seed(123, "QCR", 1));
  int equal = 0;
  double corr_sum = 0.0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const double ua = a.uniform();
    const double ub = b.uniform();
    if (ua == ub) ++equal;
    corr_sum += (ua - 0.5) * (ub - 0.5);
  }
  EXPECT_LT(equal, 3);
  // Sample covariance of independent U(0,1) ~ N(0, (1/12)/sqrt(n)).
  EXPECT_LT(std::abs(corr_sum / n), 0.01);
}

}  // namespace
}  // namespace impatience::engine
