// Runs real simulator trials through the engine: catches both seeding
// regressions (results must not depend on thread count) and data races
// in the simulator core when several trials share one scenario — this is
// the test ThreadSanitizer is pointed at (ctest -L engine).
#include <gtest/gtest.h>

#include <vector>

#include "impatience/core/experiment.hpp"
#include "impatience/engine/runner.hpp"
#include "impatience/engine/seeding.hpp"
#include "impatience/utility/families.hpp"

namespace impatience {
namespace {

core::Scenario small_scenario(std::uint64_t seed) {
  util::Rng rng(engine::child_seed(seed, "scenario"));
  auto trace = trace::generate_poisson({12, 400, 0.05}, rng);
  return core::make_scenario(std::move(trace),
                             core::Catalog::pareto(12, 1.0, 1.0), 3);
}

std::vector<engine::JobSpec> make_jobs(
    const core::Scenario& scenario, const utility::DelayUtility& u,
    const std::vector<std::vector<core::NamedPlacement>>& placements,
    int trials, std::uint64_t root) {
  std::vector<engine::JobSpec> jobs;
  for (int t = 0; t < trials; ++t) {
    for (const auto& competitor : placements[static_cast<std::size_t>(t)]) {
      engine::JobSpec job;
      job.policy = competitor.name;
      job.trial = t;
      job.seed = engine::child_seed(root, competitor.name,
                                    static_cast<std::uint64_t>(t));
      job.run = [&scenario, &u, &competitor](util::Rng& rng) {
        return core::run_fixed(scenario, u, competitor.name,
                               competitor.placement, core::SimOptions{}, rng)
            .observed_utility();
      };
      jobs.push_back(std::move(job));
    }
    engine::JobSpec qcr;
    qcr.policy = "QCR";
    qcr.trial = t;
    qcr.seed = engine::child_seed(root, "QCR", static_cast<std::uint64_t>(t));
    qcr.run = [&scenario, &u](util::Rng& rng) {
      return core::run_qcr(scenario, u, core::QcrOptions{},
                           core::SimOptions{}, rng)
          .observed_utility();
    };
    jobs.push_back(std::move(qcr));
  }
  return jobs;
}

TEST(SimParallel, SharedScenarioTrialsAreThreadCountInvariant) {
  const std::uint64_t root = 1234;
  const int trials = 3;
  const auto scenario = small_scenario(root);
  const utility::PowerUtility u(0.0);

  std::vector<std::vector<core::NamedPlacement>> placements;
  for (int t = 0; t < trials; ++t) {
    util::Rng pr(engine::child_seed(root, "placement",
                                    static_cast<std::uint64_t>(t)));
    placements.push_back(core::build_competitors(
        scenario, u, core::OptMode::kHomogeneous, pr));
  }

  const auto serial = engine::Runner({.threads = 1})
                          .run(make_jobs(scenario, u, placements, trials,
                                         root),
                               root);
  const auto wide = engine::Runner({.threads = 4})
                        .run(make_jobs(scenario, u, placements, trials,
                                       root),
                             root);

  ASSERT_EQ(serial.failed, 0u);
  ASSERT_EQ(wide.failed, 0u);
  ASSERT_EQ(serial.jobs.size(), wide.jobs.size());
  for (std::size_t i = 0; i < serial.jobs.size(); ++i) {
    EXPECT_EQ(serial.jobs[i].policy, wide.jobs[i].policy);
    EXPECT_EQ(serial.jobs[i].result.value, wide.jobs[i].result.value)
        << serial.jobs[i].policy << " trial " << serial.jobs[i].trial;
  }
}

TEST(SimParallel, FaultyTrialsAreThreadCountInvariant) {
  // Same contract under injected faults: each job derives its fault seed
  // from its own identity, so 1-thread and 8-thread runs are
  // bit-identical even while the channel drops, truncates, and crashes.
  const std::uint64_t root = 5678;
  const int trials = 3;
  const auto scenario = small_scenario(root);
  const utility::PowerUtility u(0.0);

  const auto make_faulty_jobs = [&] {
    std::vector<engine::JobSpec> jobs;
    for (int t = 0; t < trials; ++t) {
      engine::JobSpec qcr;
      qcr.policy = "QCR-faulty";
      qcr.trial = t;
      qcr.seed = engine::child_seed(root, "QCR-faulty",
                                    static_cast<std::uint64_t>(t));
      const std::uint64_t fault_seed = engine::child_seed(
          root, "fault:QCR-faulty", static_cast<std::uint64_t>(t));
      qcr.run_cancellable = [&scenario, &u, fault_seed](
                                util::Rng& rng,
                                const util::CancellationToken& cancel) {
        core::SimOptions options;
        options.faults.p_drop = 0.1;
        options.faults.p_truncate = 0.1;
        options.faults.p_crash = 0.001;
        options.faults.seed = fault_seed;
        options.cancel = &cancel;
        return core::run_qcr(scenario, u, core::QcrOptions{}, options, rng)
            .observed_utility();
      };
      jobs.push_back(std::move(qcr));
    }
    return jobs;
  };

  const auto serial =
      engine::Runner({.threads = 1}).run(make_faulty_jobs(), root);
  const auto wide =
      engine::Runner({.threads = 8}).run(make_faulty_jobs(), root);

  ASSERT_EQ(serial.failed, 0u);
  ASSERT_EQ(wide.failed, 0u);
  ASSERT_EQ(serial.jobs.size(), wide.jobs.size());
  for (std::size_t i = 0; i < serial.jobs.size(); ++i) {
    EXPECT_EQ(serial.jobs[i].result.value, wide.jobs[i].result.value)
        << "faulty trial " << serial.jobs[i].trial;
  }
}

}  // namespace
}  // namespace impatience
