#include "impatience/engine/artifacts.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <sstream>
#include <stdexcept>

#include "impatience/engine/seeding.hpp"
#include "impatience/util/errors.hpp"

namespace impatience::engine {
namespace {

TEST(Artifacts, JsonEscape) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(json_escape(std::string("nul\x01") + "x"), "nul\\u0001x");
}

TEST(Artifacts, JsonNumber) {
  EXPECT_EQ(json_number(1.5), "1.5");
  EXPECT_EQ(json_number(std::nan("")), "null");
  EXPECT_EQ(json_number(INFINITY), "null");
  // Round-trip precision: 0.1 must not be truncated to fewer digits.
  EXPECT_EQ(std::stod(json_number(0.1)), 0.1);
}

RunReport sample_report() {
  std::vector<JobSpec> jobs;
  for (int t = 0; t < 4; ++t) {
    JobSpec job;
    job.scenario = "unit";
    job.policy = t < 2 ? "QCR" : "OPT";
    job.trial = t % 2;
    job.x = 0.5;
    job.seed = child_seed(9, job.policy, static_cast<std::uint64_t>(t));
    job.run = [t](util::Rng&) {
      if (t == 3) throw std::runtime_error("bad \"quote\" job");
      return static_cast<double>(t);
    };
    jobs.push_back(std::move(job));
  }
  return Runner({.threads = 2}).run(std::move(jobs), 9);
}

TEST(Artifacts, ManifestContainsSchemaSeriesJobsAndPercentiles) {
  const RunReport report = sample_report();
  std::ostringstream out;
  write_manifest(out, report, {"unit_test", {{"trials", "2"}}});
  const std::string json = out.str();

  EXPECT_NE(json.find("\"schema\": \"impatience.run_manifest/1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"generator\": \"unit_test\""), std::string::npos);
  EXPECT_NE(json.find("\"root_seed\": 9"), std::string::npos);
  EXPECT_NE(json.find("\"trials\": \"2\""), std::string::npos);
  EXPECT_NE(json.find("\"jobs_failed\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"policy\": \"QCR\""), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  // The failing job's message survives, escaped.
  EXPECT_NE(json.find("bad \\\"quote\\\" job"), std::string::npos);

  // Structural smoke check: braces and brackets balance.
  int depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(Artifacts, WriteFileThrowsOnBadPath) {
  EXPECT_THROW(write_manifest_file("/nonexistent-dir/x.json",
                                   sample_report(), {"t", {}}),
               util::IoError);
}

TEST(Artifacts, ErrorKindRoundTripsThroughItsManifestString) {
  for (ErrorKind kind :
       {ErrorKind::none, ErrorKind::job_exception, ErrorKind::timeout,
        ErrorKind::fault_budget_exceeded, ErrorKind::io}) {
    EXPECT_EQ(error_kind_from_string(to_string(kind)), kind);
  }
  // Unknown strings from a future schema degrade to the generic kind.
  EXPECT_EQ(error_kind_from_string("martian"), ErrorKind::job_exception);
}

TEST(Artifacts, ManifestRecordsErrorKindForFailedJobs) {
  const RunReport report = sample_report();
  std::ostringstream out;
  write_manifest(out, report, {"unit_test", {}});
  const std::string json = out.str();

  EXPECT_NE(json.find("\"error_kind\": \"job_exception\""),
            std::string::npos);
  EXPECT_NE(json.find("\"quarantined\": true"), std::string::npos);
  EXPECT_NE(json.find("\"jobs_quarantined\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"jobs_resumed\": 0"), std::string::npos);
  // Successful jobs carry no error_kind field.
  EXPECT_EQ(json.find("\"error_kind\": \"none\""), std::string::npos);
}

// A streambuf that accepts `budget` bytes and then fails: simulates the
// disk filling up (or the process being killed) mid-write.
class FailingStreambuf : public std::streambuf {
 public:
  explicit FailingStreambuf(std::size_t budget) : budget_(budget) {}

 protected:
  int_type overflow(int_type ch) override {
    if (budget_ == 0) return traits_type::eof();
    --budget_;
    return ch;
  }

 private:
  std::size_t budget_;
};

TEST(Artifacts, WriteDyingMidStreamSetsFailbitWithoutCrashing) {
  const RunReport report = sample_report();
  FailingStreambuf buf(64);  // dies long before the manifest completes
  std::ostream out(&buf);
  write_manifest(out, report, {"unit_test", {}});
  EXPECT_FALSE(out.good());  // the failure is visible, not swallowed
}

TEST(Artifacts, AtomicWriteReplacesTheTargetAndLeavesNoTemp) {
  const std::string path =
      testing::TempDir() + "impatience_atomic_write.json";
  std::remove(path.c_str());
  {
    std::ofstream prior(path);
    prior << "previous contents";
  }

  atomic_write_file(path, [](std::ostream& out) { out << "fresh"; });

  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, "fresh");
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  std::remove(path.c_str());
}

TEST(Artifacts, AtomicWriteFailureLeavesPreviousFileIntact) {
  const std::string path =
      testing::TempDir() + "impatience_atomic_fail.json";
  std::remove(path.c_str());
  {
    std::ofstream prior(path);
    prior << "previous contents";
  }

  EXPECT_THROW(atomic_write_file(path,
                                 [](std::ostream& out) {
                                   out << "half a mani";
                                   throw std::runtime_error("killed");
                                 }),
               std::runtime_error);

  // The interrupted write never touched the real file, and the temp file
  // was cleaned up.
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, "previous contents");
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace impatience::engine
