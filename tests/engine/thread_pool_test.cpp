#include "impatience/engine/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>

namespace impatience::engine {
namespace {

TEST(ThreadPool, RunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ReusableAfterWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), (round + 1) * 10);
  }
}

TEST(ThreadPool, WaitIdleForTimesOutWhileBusy) {
  ThreadPool pool(1);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  pool.submit([&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });
  EXPECT_FALSE(pool.wait_idle_for(std::chrono::milliseconds(20)));
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_one();
  pool.wait_idle();
}

TEST(ThreadPool, WorkersActuallyRunConcurrently) {
  // Two tasks that each wait for the other can only finish when two
  // workers execute them at the same time.
  ThreadPool pool(2);
  std::mutex mu;
  std::condition_variable cv;
  int arrived = 0;
  auto rendezvous = [&] {
    std::unique_lock<std::mutex> lock(mu);
    ++arrived;
    cv.notify_all();
    cv.wait(lock, [&] { return arrived >= 2; });
  };
  pool.submit(rendezvous);
  pool.submit(rendezvous);
  pool.wait_idle();
  EXPECT_EQ(arrived, 2);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
  }  // ~ThreadPool joins after draining
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ResolveThreads) {
  EXPECT_EQ(ThreadPool::resolve_threads(3), 3u);
  EXPECT_EQ(ThreadPool::resolve_threads(1), 1u);
  EXPECT_GE(ThreadPool::resolve_threads(0), 1u);
  EXPECT_GE(ThreadPool::resolve_threads(-2), 1u);
}

}  // namespace
}  // namespace impatience::engine
