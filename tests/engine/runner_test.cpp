#include "impatience/engine/runner.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "impatience/engine/seeding.hpp"

namespace impatience::engine {
namespace {

/// A batch whose outcomes depend only on each job's seed: every policy
/// and trial combination hashes its own Rng stream.
std::vector<JobSpec> make_batch(int policies, int trials,
                                std::uint64_t root) {
  std::vector<JobSpec> jobs;
  for (int p = 0; p < policies; ++p) {
    for (int t = 0; t < trials; ++t) {
      JobSpec job;
      job.scenario = "test";
      job.policy = "P" + std::to_string(p);
      job.trial = t;
      job.x = static_cast<double>(p);
      job.seed = child_seed(root, job.policy,
                            static_cast<std::uint64_t>(t));
      job.run = [](util::Rng& rng) {
        double sum = 0.0;
        for (int i = 0; i < 1000; ++i) sum += rng.uniform();
        return sum;
      };
      jobs.push_back(std::move(job));
    }
  }
  return jobs;
}

TEST(Runner, SameRootSeedOneVsEightThreadsIsBitIdentical) {
  Runner serial({.threads = 1});
  Runner wide({.threads = 8});
  const RunReport a = serial.run(make_batch(5, 8, 2009), 2009);
  const RunReport b = wide.run(make_batch(5, 8, 2009), 2009);

  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].policy, b.jobs[i].policy);
    EXPECT_EQ(a.jobs[i].trial, b.jobs[i].trial);
    EXPECT_EQ(a.jobs[i].seed, b.jobs[i].seed);
    EXPECT_TRUE(a.jobs[i].result.ok);
    // Bit-identical, not approximately equal.
    EXPECT_EQ(a.jobs[i].result.value, b.jobs[i].result.value) << i;
  }

  // Identical TrialAggregator contents, sample order included.
  ASSERT_EQ(a.aggregate.series_names(), b.aggregate.series_names());
  for (const auto& series : a.aggregate.series_names()) {
    ASSERT_EQ(a.aggregate.xs(series), b.aggregate.xs(series));
    for (double x : a.aggregate.xs(series)) {
      EXPECT_EQ(a.aggregate.samples(series, x), b.aggregate.samples(series, x));
    }
  }
}

TEST(Runner, FailedJobIsIsolatedAndReported) {
  auto jobs = make_batch(2, 5, 7);
  jobs[3].run = [](util::Rng&) -> double {
    throw std::runtime_error("boom trial 3");
  };
  Runner runner({.threads = 4});
  const RunReport report = runner.run(std::move(jobs), 7);

  EXPECT_EQ(report.failed, 1u);
  ASSERT_EQ(report.jobs.size(), 10u);
  EXPECT_FALSE(report.jobs[3].result.ok);
  EXPECT_NE(report.jobs[3].result.error.find("boom trial 3"),
            std::string::npos);
  for (std::size_t i = 0; i < report.jobs.size(); ++i) {
    if (i != 3) EXPECT_TRUE(report.jobs[i].result.ok) << i;
  }
  // The failed job's sample is excluded from the aggregate.
  EXPECT_EQ(report.aggregate.samples("P0", 0.0).size(), 4u);
  EXPECT_EQ(report.aggregate.samples("P1", 1.0).size(), 5u);
}

TEST(Runner, NonStdExceptionIsCaught) {
  std::vector<JobSpec> jobs = make_batch(1, 1, 1);
  jobs[0].run = [](util::Rng&) -> double { throw 42; };
  const RunReport report = Runner({.threads = 2}).run(std::move(jobs), 1);
  EXPECT_EQ(report.failed, 1u);
  EXPECT_EQ(report.jobs[0].result.error, "unknown exception");
}

TEST(Runner, AggregateFollowsSubmissionOrder) {
  // Three trials of one policy: samples must appear in trial order even
  // when later trials finish first.
  std::vector<JobSpec> jobs;
  for (int t = 0; t < 3; ++t) {
    JobSpec job;
    job.policy = "P";
    job.trial = t;
    job.x = 1.0;
    job.seed = static_cast<std::uint64_t>(t);
    job.run = [t](util::Rng&) { return static_cast<double>(t); };
    jobs.push_back(std::move(job));
  }
  const RunReport report = Runner({.threads = 3}).run(std::move(jobs), 0);
  const std::vector<double> expected{0.0, 1.0, 2.0};
  EXPECT_EQ(report.aggregate.samples("P", 1.0), expected);
}

TEST(Runner, MergeAccumulatesBatches) {
  Runner runner({.threads = 2});
  RunReport total = runner.run(make_batch(2, 3, 11), 11);
  RunReport second = runner.run(make_batch(2, 3, 12), 12);
  const std::size_t jobs_before = total.jobs.size();
  total.merge(std::move(second));
  EXPECT_EQ(total.jobs.size(), jobs_before + 6);
  EXPECT_EQ(total.root_seed, 11u);  // non-empty report keeps its identity
  EXPECT_EQ(total.aggregate.samples("P0", 0.0).size(), 6u);

  RunReport fresh;
  fresh.merge(runner.run(make_batch(1, 1, 13), 13));
  EXPECT_EQ(fresh.root_seed, 13u);  // empty report adopts the batch's
  EXPECT_EQ(fresh.threads, 2);
}

TEST(Runner, ReportsWallTimes) {
  const RunReport report = Runner({.threads = 2}).run(make_batch(2, 2, 5), 5);
  EXPECT_GT(report.wall_seconds, 0.0);
  for (const auto& job : report.jobs) {
    EXPECT_GE(job.result.wall_seconds, 0.0);
  }
}

}  // namespace
}  // namespace impatience::engine
