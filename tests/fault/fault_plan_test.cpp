#include "impatience/fault/fault.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace impatience::fault {
namespace {

TEST(FaultConfig, DefaultIsInert) {
  FaultConfig config;
  EXPECT_FALSE(config.any());
  EXPECT_FALSE(config.engaged());
  config.engage_when_zero = true;
  EXPECT_FALSE(config.any());
  EXPECT_TRUE(config.engaged());
}

TEST(FaultConfig, ValidateRejectsOutOfRangeProbabilities) {
  FaultConfig config;
  config.p_drop = 1.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.p_drop = -0.1;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.p_drop = 0.5;
  EXPECT_NO_THROW(config.validate());
}

TEST(FaultPlan, DefaultPlanIsInactive) {
  FaultPlan plan;
  EXPECT_FALSE(plan.active());
  EXPECT_FALSE(plan.counters().any());
}

TEST(FaultPlan, EngagedZeroProbabilityPlanNeverFires) {
  FaultConfig config;
  config.engage_when_zero = true;
  config.seed = 7;
  FaultPlan plan(config);
  EXPECT_TRUE(plan.active());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(plan.drop_meeting());
    EXPECT_FALSE(plan.duplicate_meeting());
    EXPECT_FALSE(plan.should_truncate());
    EXPECT_FALSE(plan.reorder_slot());
    EXPECT_FALSE(plan.crash_now());
  }
  EXPECT_FALSE(plan.counters().any());
}

TEST(FaultPlan, SameSeedSameDecisionSequence) {
  FaultConfig config;
  config.p_drop = 0.3;
  config.p_crash = 0.1;
  config.seed = 42;
  FaultPlan a(config);
  FaultPlan b(config);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.drop_meeting(), b.drop_meeting());
    EXPECT_EQ(a.crash_now(), b.crash_now());
  }
  EXPECT_EQ(a.counters().meetings_dropped, b.counters().meetings_dropped);
  EXPECT_EQ(a.counters().crashes, b.counters().crashes);
}

TEST(FaultPlan, TruncationPrefixIsAProperPrefix) {
  FaultConfig config;
  config.p_truncate = 1.0;
  config.seed = 3;
  FaultPlan plan(config);
  for (int i = 0; i < 200; ++i) {
    const long k = plan.truncation_prefix(7);
    EXPECT_GE(k, 0);
    EXPECT_LT(k, 7);
  }
  EXPECT_EQ(plan.counters().exchanges_truncated, 200u);
  EXPECT_THROW(plan.truncation_prefix(0), std::logic_error);
}

TEST(FaultPlan, DowntimeIsAtLeastOneSlot) {
  FaultConfig config;
  config.p_crash = 1.0;
  config.mean_downtime = 5.0;
  config.seed = 11;
  FaultPlan plan(config);
  double sum = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const auto d = plan.downtime();
    EXPECT_GE(d, 1);
    sum += static_cast<double>(d);
  }
  // Seeded geometric-like (1 + floor(Exp)): the flooring biases the mean
  // a bit below the configured value — for mean_downtime = 5 the true
  // mean is 1 + 1/(e^(1/4) - 1) ~= 4.52.
  EXPECT_NEAR(sum / n, 4.52, 0.5);
}

TEST(FaultPlan, BudgetExceededThrowsTypedError) {
  FaultConfig config;
  config.p_drop = 1.0;
  config.max_fault_events = 3;
  config.seed = 1;
  FaultPlan plan(config);
  EXPECT_TRUE(plan.drop_meeting());
  EXPECT_TRUE(plan.drop_meeting());
  EXPECT_TRUE(plan.drop_meeting());
  EXPECT_THROW(plan.drop_meeting(), util::FaultBudgetError);
}

TEST(FaultPlan, ShuffleIsSeededAndCountersAccumulate) {
  FaultConfig config;
  config.p_reorder = 1.0;
  config.seed = 99;
  std::vector<trace::ContactEvent> events;
  for (trace::NodeId i = 0; i < 8; ++i) {
    events.push_back({0, i, static_cast<trace::NodeId>(i + 1)});
  }
  auto once = events;
  auto twice = events;
  FaultPlan a(config);
  FaultPlan b(config);
  EXPECT_TRUE(a.reorder_slot());
  EXPECT_TRUE(b.reorder_slot());
  a.shuffle_delivery(once);
  b.shuffle_delivery(twice);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(once[i].a, twice[i].a);
    EXPECT_EQ(once[i].b, twice[i].b);
  }
}

}  // namespace
}  // namespace impatience::fault
