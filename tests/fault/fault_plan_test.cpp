#include "impatience/fault/fault.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace impatience::fault {
namespace {

TEST(FaultConfig, DefaultIsInert) {
  FaultConfig config;
  EXPECT_FALSE(config.any());
  EXPECT_FALSE(config.engaged());
  config.engage_when_zero = true;
  EXPECT_FALSE(config.any());
  EXPECT_TRUE(config.engaged());
}

TEST(FaultConfig, ValidateRejectsOutOfRangeProbabilities) {
  FaultConfig config;
  config.p_drop = 1.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.p_drop = -0.1;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.p_drop = 0.5;
  EXPECT_NO_THROW(config.validate());
}

TEST(FaultPlan, DefaultPlanIsInactive) {
  FaultPlan plan;
  EXPECT_FALSE(plan.active());
  EXPECT_FALSE(plan.counters().any());
}

TEST(FaultPlan, EngagedZeroProbabilityPlanNeverFires) {
  FaultConfig config;
  config.engage_when_zero = true;
  config.seed = 7;
  FaultPlan plan(config);
  EXPECT_TRUE(plan.active());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(plan.drop_meeting());
    EXPECT_FALSE(plan.duplicate_meeting());
    EXPECT_FALSE(plan.should_truncate());
    EXPECT_FALSE(plan.reorder_slot());
    EXPECT_FALSE(plan.crash_now());
  }
  EXPECT_FALSE(plan.counters().any());
}

TEST(FaultPlan, SameSeedSameDecisionSequence) {
  FaultConfig config;
  config.p_drop = 0.3;
  config.p_crash = 0.1;
  config.seed = 42;
  FaultPlan a(config);
  FaultPlan b(config);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.drop_meeting(), b.drop_meeting());
    EXPECT_EQ(a.crash_now(), b.crash_now());
  }
  EXPECT_EQ(a.counters().meetings_dropped, b.counters().meetings_dropped);
  EXPECT_EQ(a.counters().crashes, b.counters().crashes);
}

TEST(FaultPlan, TruncationPrefixIsAProperPrefix) {
  FaultConfig config;
  config.p_truncate = 1.0;
  config.seed = 3;
  FaultPlan plan(config);
  for (int i = 0; i < 200; ++i) {
    const long k = plan.truncation_prefix(7);
    EXPECT_GE(k, 0);
    EXPECT_LT(k, 7);
  }
  EXPECT_EQ(plan.counters().exchanges_truncated, 200u);
  EXPECT_THROW(plan.truncation_prefix(0), std::logic_error);
}

TEST(FaultPlan, DowntimeIsAtLeastOneSlot) {
  FaultConfig config;
  config.p_crash = 1.0;
  config.mean_downtime = 5.0;
  config.seed = 11;
  FaultPlan plan(config);
  double sum = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const auto d = plan.downtime();
    EXPECT_GE(d, 1);
    sum += static_cast<double>(d);
  }
  // Seeded geometric-like (1 + floor(Exp)): the flooring biases the mean
  // a bit below the configured value — for mean_downtime = 5 the true
  // mean is 1 + 1/(e^(1/4) - 1) ~= 4.52.
  EXPECT_NEAR(sum / n, 4.52, 0.5);
}

TEST(FaultPlan, BudgetExceededThrowsTypedError) {
  FaultConfig config;
  config.p_drop = 1.0;
  config.max_fault_events = 3;
  config.seed = 1;
  FaultPlan plan(config);
  EXPECT_TRUE(plan.drop_meeting());
  EXPECT_TRUE(plan.drop_meeting());
  EXPECT_TRUE(plan.drop_meeting());
  EXPECT_THROW(plan.drop_meeting(), util::FaultBudgetError);
}

TEST(FaultPlan, ShuffleIsSeededAndCountersAccumulate) {
  FaultConfig config;
  config.p_reorder = 1.0;
  config.seed = 99;
  std::vector<trace::ContactEvent> events;
  for (trace::NodeId i = 0; i < 8; ++i) {
    events.push_back({0, i, static_cast<trace::NodeId>(i + 1)});
  }
  auto once = events;
  auto twice = events;
  FaultPlan a(config);
  FaultPlan b(config);
  EXPECT_TRUE(a.reorder_slot());
  EXPECT_TRUE(b.reorder_slot());
  a.shuffle_delivery(once);
  b.shuffle_delivery(twice);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(once[i].a, twice[i].a);
    EXPECT_EQ(once[i].b, twice[i].b);
  }
}

// ---------------------------------------------------------------------
// Geometric-skip crash scheduling (event-kernel support). The identity
// claimed in fault.hpp — per-slot Bernoulli(p) coins and per-node
// geometric gap draws are the same process in distribution — is checked
// the same way PR 4 checked alias-table demand gaps: chi-square both
// formulations' gap histograms against the Geometric(p) pmf.

// Upper chi-square critical value via Wilson-Hilferty at z = 3.72 (upper
// tail ~1e-4): loose enough that the fixed seeds below never trip it,
// tight enough that an off-by-one in the gap formula fails hugely.
double chi_square_critical(std::size_t df) {
  const double d = static_cast<double>(df);
  const double t = 1.0 - 2.0 / (9.0 * d) + 3.72 * std::sqrt(2.0 / (9.0 * d));
  return d * t * t * t;
}

/// Chi-square statistic of observed gap counts against Geometric(p):
/// buckets 0..K-1 hold P(G = k) = (1-p)^k p, the last holds P(G >= K).
double geometric_chi_square(const std::vector<std::size_t>& observed,
                            double p) {
  const std::size_t tail = observed.size() - 1;
  std::size_t draws = 0;
  for (std::size_t c : observed) draws += c;
  double stat = 0.0;
  for (std::size_t k = 0; k <= tail; ++k) {
    const double prob = k < tail ? std::pow(1.0 - p, static_cast<double>(k)) * p
                                 : std::pow(1.0 - p, static_cast<double>(tail));
    const double expected = static_cast<double>(draws) * prob;
    const double diff = static_cast<double>(observed[k]) - expected;
    stat += diff * diff / expected;
  }
  return stat;
}

TEST(FaultPlan, GeometricSkipGapsMatchThePerSlotHazard) {
  constexpr double kP = 0.05;
  constexpr std::size_t kBuckets = 21;  // gaps 0..19 plus a >= 20 tail
  constexpr std::size_t kDraws = 20000;

  FaultConfig config;
  config.p_crash = kP;
  config.seed = 314;

  // Event-kernel formulation: direct geometric gaps from a node stream.
  std::vector<std::size_t> skip_gaps(kBuckets, 0);
  {
    FaultPlan plan(config);
    plan.prepare_node_streams(1);
    Slot from = 0;
    for (std::size_t i = 0; i < kDraws; ++i) {
      const auto crash = plan.next_node_crash(0, from);
      ASSERT_NE(crash.slot, FaultPlan::kNoCrash);
      const Slot gap = crash.slot - from;
      ++skip_gaps[std::min<Slot>(gap, kBuckets - 1)];
      from = crash.slot + 1;
    }
  }

  // Slot-stepped formulation: count slots between crash_now() successes.
  std::vector<std::size_t> coin_gaps(kBuckets, 0);
  {
    FaultPlan plan(config);
    std::size_t collected = 0;
    Slot gap = 0;
    while (collected < kDraws) {
      if (plan.crash_now()) {
        ++coin_gaps[std::min<Slot>(gap, kBuckets - 1)];
        gap = 0;
        ++collected;
      } else {
        ++gap;
      }
    }
  }

  EXPECT_LT(geometric_chi_square(skip_gaps, kP),
            chi_square_critical(kBuckets - 1));
  EXPECT_LT(geometric_chi_square(coin_gaps, kP),
            chi_square_critical(kBuckets - 1));
}

TEST(FaultPlan, NodeStreamsAreSeededPerNodeAndReproducible) {
  FaultConfig config;
  config.p_crash = 0.1;
  config.p_persist_cache = 0.5;
  config.mean_downtime = 8.0;
  config.seed = 27;
  FaultPlan a(config);
  FaultPlan b(config);
  a.prepare_node_streams(3);
  b.prepare_node_streams(3);
  bool nodes_differ = false;
  for (int i = 0; i < 200; ++i) {
    for (trace::NodeId n = 0; n < 3; ++n) {
      const auto ca = a.next_node_crash(n, 0);
      const auto cb = b.next_node_crash(n, 0);
      EXPECT_EQ(ca.slot, cb.slot);
      EXPECT_EQ(ca.persist_cache, cb.persist_cache);
      EXPECT_EQ(ca.downtime, cb.downtime);
      EXPECT_GE(ca.downtime, 1);
    }
    const auto c0 = a.next_node_crash(0, 0);
    const auto c1 = a.next_node_crash(1, 0);
    b.next_node_crash(0, 0);  // keep the twin in lockstep
    b.next_node_crash(1, 0);
    if (c0.slot != c1.slot) nodes_differ = true;
  }
  EXPECT_TRUE(nodes_differ);
}

TEST(FaultPlan, NextNodeCrashRequiresPreparedStreams) {
  FaultConfig config;
  config.p_crash = 0.2;
  config.seed = 5;
  FaultPlan plan(config);
  EXPECT_THROW(plan.next_node_crash(0, 0), std::logic_error);
}

TEST(FaultPlan, NextNodeCrashZeroHazardNeverSchedules) {
  FaultConfig config;
  config.engage_when_zero = true;
  config.seed = 6;
  FaultPlan plan(config);
  plan.prepare_node_streams(2);
  const auto crash = plan.next_node_crash(1, 100);
  EXPECT_EQ(crash.slot, FaultPlan::kNoCrash);
  EXPECT_FALSE(plan.counters().any());
}

TEST(FaultPlan, NextNodeCrashCertainHazardFiresImmediately) {
  FaultConfig config;
  config.p_crash = 1.0;
  config.seed = 8;
  FaultPlan plan(config);
  plan.prepare_node_streams(1);
  for (Slot from : {Slot{0}, Slot{17}, Slot{500}}) {
    const auto crash = plan.next_node_crash(0, from);
    EXPECT_EQ(crash.slot, from);
    EXPECT_GE(crash.downtime, 1);
  }
}

TEST(FaultPlan, RecordCrashCountsAndChargesTheBudget) {
  FaultConfig config;
  config.p_crash = 0.5;
  config.max_fault_events = 2;
  config.seed = 9;
  FaultPlan plan(config);
  plan.record_crash();
  plan.record_crash();
  EXPECT_EQ(plan.counters().crashes, 2u);
  EXPECT_THROW(plan.record_crash(), util::FaultBudgetError);
}

}  // namespace
}  // namespace impatience::fault
