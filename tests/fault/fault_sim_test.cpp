// Simulator-level fault injection: the zero-probability regression lock
// (faulty machinery engaged, nothing fires, output bit-identical to the
// fault-free baseline), graceful mandate-conservation degradation under
// churn, and the semantics of each fault class.
#include <gtest/gtest.h>

#include "impatience/core/experiment.hpp"
#include "impatience/engine/seeding.hpp"
#include "impatience/utility/families.hpp"

namespace impatience {
namespace {

core::Scenario small_scenario(std::uint64_t seed) {
  util::Rng rng(engine::child_seed(seed, "scenario"));
  auto trace = trace::generate_poisson({12, 500, 0.05}, rng);
  return core::make_scenario(std::move(trace),
                             core::Catalog::pareto(12, 1.0, 1.0), 3);
}

core::SimulationResult run(const core::Scenario& scenario,
                           const fault::FaultConfig& faults,
                           std::uint64_t sim_seed = 77) {
  const utility::PowerUtility u(0.0);
  core::SimOptions options;
  options.faults = faults;
  util::Rng rng(sim_seed);
  return core::run_qcr(scenario, u, core::QcrOptions{}, options, rng);
}

void expect_bit_identical(const core::SimulationResult& a,
                          const core::SimulationResult& b) {
  EXPECT_EQ(a.total_gain, b.total_gain);  // bit-identical, not approximate
  EXPECT_EQ(a.requests_created, b.requests_created);
  EXPECT_EQ(a.fulfillments, b.fulfillments);
  EXPECT_EQ(a.immediate_fulfillments, b.immediate_fulfillments);
  EXPECT_EQ(a.censored_requests, b.censored_requests);
  EXPECT_EQ(a.mean_delay, b.mean_delay);
  EXPECT_EQ(a.mean_query_count, b.mean_query_count);
  EXPECT_EQ(a.final_counts, b.final_counts);
  EXPECT_EQ(a.mandates_created, b.mandates_created);
  EXPECT_EQ(a.replicas_written, b.replicas_written);
  EXPECT_EQ(a.outstanding_mandates, b.outstanding_mandates);
  ASSERT_EQ(a.observed_series.size(), b.observed_series.size());
  for (std::size_t k = 0; k < a.observed_series.size(); ++k) {
    EXPECT_EQ(a.observed_series[k].value, b.observed_series[k].value);
  }
}

TEST(FaultSim, ZeroProbabilityFaultsBitIdenticalToBaseline) {
  const auto scenario = small_scenario(1);
  const auto baseline = run(scenario, fault::FaultConfig{});

  // The fault machinery runs (engaged), draws from its own stream, but
  // never fires — the regression lock on the fault-free path.
  fault::FaultConfig zero;
  zero.engage_when_zero = true;
  zero.seed = 0xDEAD;
  const auto faulty_path = run(scenario, zero);

  EXPECT_FALSE(faulty_path.faults.any());
  expect_bit_identical(baseline, faulty_path);
}

TEST(FaultSim, ChurnDegradesMandateConservationGracefully) {
  const auto scenario = small_scenario(2);
  fault::FaultConfig faults;
  faults.p_crash = 0.002;
  faults.mean_downtime = 10.0;
  faults.seed = 5;
  const auto result = run(scenario, faults);

  EXPECT_GT(result.faults.crashes, 0u);
  // Every created mandate is written, still outstanding, or accounted
  // lost — conservation must not silently leak under churn.
  EXPECT_EQ(result.mandates_created,
            result.replicas_written + result.outstanding_mandates +
                result.faults.mandates_lost);
}

TEST(FaultSim, DropAllMeetingsKillsMeetingFulfilments) {
  const auto scenario = small_scenario(3);
  fault::FaultConfig faults;
  faults.p_drop = 1.0;
  faults.seed = 9;
  const auto result = run(scenario, faults);
  EXPECT_GT(result.faults.meetings_dropped, 0u);
  EXPECT_EQ(result.fulfillments, 0u);  // only own-cache hits remain
}

TEST(FaultSim, TruncationDefersFulfilments) {
  const auto scenario = small_scenario(4);
  const auto baseline = run(scenario, fault::FaultConfig{});

  fault::FaultConfig faults;
  faults.p_truncate = 1.0;
  faults.seed = 13;
  const auto truncated = run(scenario, faults);

  EXPECT_GT(truncated.faults.exchanges_truncated, 0u);
  EXPECT_GT(truncated.faults.fulfilments_deferred, 0u);
  // A truncated exchange serves a strict prefix, so meeting fulfilments
  // cannot exceed the perfect-channel run.
  EXPECT_LT(truncated.fulfillments, baseline.fulfillments);
}

TEST(FaultSim, DuplicatedAndReorderedDeliveryIsCounted) {
  const auto scenario = small_scenario(5);
  fault::FaultConfig faults;
  faults.p_duplicate = 1.0;
  faults.p_reorder = 1.0;
  faults.seed = 21;
  const auto result = run(scenario, faults);
  EXPECT_GT(result.faults.meetings_duplicated, 0u);
  EXPECT_GT(result.faults.slots_reordered, 0u);
}

TEST(FaultSim, PersistedCacheCrashKeepsReplicas) {
  const auto scenario = small_scenario(6);
  fault::FaultConfig faults;
  faults.p_crash = 0.005;
  faults.p_persist_cache = 1.0;
  faults.seed = 31;
  const auto result = run(scenario, faults);
  EXPECT_GT(result.faults.crashes, 0u);
  EXPECT_EQ(result.faults.cold_restarts, result.faults.crashes);
  EXPECT_EQ(result.faults.replicas_lost, 0u);  // cache survived every crash
}

TEST(FaultSim, CancellationUnwindsWithTypedError) {
  const auto scenario = small_scenario(7);
  const utility::PowerUtility u(0.0);
  util::CancellationToken token;
  token.cancel();
  core::SimOptions options;
  options.cancel = &token;
  util::Rng rng(1);
  EXPECT_THROW(core::run_qcr(scenario, u, core::QcrOptions{}, options, rng),
               util::CancelledError);
}

TEST(FaultSim, FaultBudgetStopsTheRun) {
  const auto scenario = small_scenario(8);
  fault::FaultConfig faults;
  faults.p_drop = 1.0;
  faults.max_fault_events = 5;
  faults.seed = 2;
  EXPECT_THROW(run(scenario, faults), util::FaultBudgetError);
}

}  // namespace
}  // namespace impatience
