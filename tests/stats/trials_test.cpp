#include "impatience/stats/trials.hpp"

#include <gtest/gtest.h>

namespace impatience::stats {
namespace {

TEST(TrialAggregator, MeanAndBand) {
  TrialAggregator agg;
  for (int t = 0; t <= 100; ++t) {
    agg.add("QCR", 1.0, static_cast<double>(t));
  }
  const auto band = agg.band("QCR", 1.0);
  EXPECT_DOUBLE_EQ(band.mean, 50.0);
  EXPECT_DOUBLE_EQ(band.p05, 5.0);
  EXPECT_DOUBLE_EQ(band.p95, 95.0);
  EXPECT_EQ(band.trials, 101u);
}

TEST(TrialAggregator, SeparatesSeriesAndX) {
  TrialAggregator agg;
  agg.add("A", 1.0, 10.0);
  agg.add("A", 2.0, 20.0);
  agg.add("B", 1.0, 30.0);
  EXPECT_DOUBLE_EQ(agg.band("A", 1.0).mean, 10.0);
  EXPECT_DOUBLE_EQ(agg.band("A", 2.0).mean, 20.0);
  EXPECT_DOUBLE_EQ(agg.band("B", 1.0).mean, 30.0);
}

TEST(TrialAggregator, XsSorted) {
  TrialAggregator agg;
  agg.add("A", 3.0, 1.0);
  agg.add("A", 1.0, 1.0);
  agg.add("A", 2.0, 1.0);
  const auto xs = agg.xs("A");
  ASSERT_EQ(xs.size(), 3u);
  EXPECT_DOUBLE_EQ(xs[0], 1.0);
  EXPECT_DOUBLE_EQ(xs[1], 2.0);
  EXPECT_DOUBLE_EQ(xs[2], 3.0);
}

TEST(TrialAggregator, XsOfUnknownSeriesIsEmpty) {
  TrialAggregator agg;
  EXPECT_TRUE(agg.xs("nope").empty());
}

TEST(TrialAggregator, UnknownLookupsThrow) {
  TrialAggregator agg;
  agg.add("A", 1.0, 1.0);
  EXPECT_THROW(agg.band("B", 1.0), std::out_of_range);
  EXPECT_THROW(agg.band("A", 9.0), std::out_of_range);
}

TEST(TrialAggregator, SeriesNames) {
  TrialAggregator agg;
  agg.add("zeta", 1.0, 1.0);
  agg.add("alpha", 1.0, 1.0);
  const auto names = agg.series_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "zeta");
}

TEST(TrialAggregator, SamplesKeepInsertionOrder) {
  TrialAggregator agg;
  agg.add("A", 1.0, 3.0);
  agg.add("A", 1.0, 1.0);
  agg.add("A", 1.0, 2.0);
  const std::vector<double> expected{3.0, 1.0, 2.0};
  EXPECT_EQ(agg.samples("A", 1.0), expected);
  EXPECT_THROW(agg.samples("B", 1.0), std::out_of_range);
  EXPECT_THROW(agg.samples("A", 9.0), std::out_of_range);
}

TEST(TrialAggregator, MergeAppendsOtherSamples) {
  TrialAggregator a;
  a.add("S", 1.0, 1.0);
  TrialAggregator b;
  b.add("S", 1.0, 2.0);
  b.add("S", 2.0, 3.0);
  b.add("T", 1.0, 4.0);
  a.merge(b);
  const std::vector<double> merged{1.0, 2.0};
  EXPECT_EQ(a.samples("S", 1.0), merged);
  EXPECT_DOUBLE_EQ(a.band("S", 2.0).mean, 3.0);
  EXPECT_DOUBLE_EQ(a.band("T", 1.0).mean, 4.0);
}

}  // namespace
}  // namespace impatience::stats
