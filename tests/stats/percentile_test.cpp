#include "impatience/stats/percentile.hpp"

#include <gtest/gtest.h>

namespace impatience::stats {
namespace {

TEST(Percentile, MedianOdd) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(Percentile, MedianEvenInterpolates) {
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0}, 0.5), 2.5);
}

TEST(Percentile, Extremes) {
  const std::vector<double> v{5.0, 1.0, 9.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 9.0);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.25), 7.0);
}

TEST(Percentile, ThrowsOnEmpty) {
  EXPECT_THROW(percentile({}, 0.5), std::invalid_argument);
}

TEST(Percentile, ThrowsOnBadP) {
  EXPECT_THROW(percentile({1.0}, -0.1), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 1.1), std::invalid_argument);
}

TEST(Percentiles, MultipleAtOnce) {
  std::vector<double> v;
  for (int i = 0; i <= 100; ++i) v.push_back(i);
  const auto ps = percentiles(v, {0.05, 0.5, 0.95});
  EXPECT_DOUBLE_EQ(ps[0], 5.0);
  EXPECT_DOUBLE_EQ(ps[1], 50.0);
  EXPECT_DOUBLE_EQ(ps[2], 95.0);
}

TEST(EmpiricalCdf, Fractions) {
  const auto cdf = empirical_cdf({1.0, 2.0, 3.0, 4.0}, {0.5, 2.0, 10.0});
  EXPECT_DOUBLE_EQ(cdf[0], 0.0);
  EXPECT_DOUBLE_EQ(cdf[1], 0.5);
  EXPECT_DOUBLE_EQ(cdf[2], 1.0);
}

TEST(MedianAbsDeviation, Constant) {
  EXPECT_DOUBLE_EQ(median_abs_deviation({4.0, 4.0, 4.0}), 0.0);
}

TEST(MedianAbsDeviation, Known) {
  // median = 3; |v - 3| = {2,1,0,1,2}; MAD = 1.
  EXPECT_DOUBLE_EQ(median_abs_deviation({1.0, 2.0, 3.0, 4.0, 5.0}), 1.0);
}

}  // namespace
}  // namespace impatience::stats
