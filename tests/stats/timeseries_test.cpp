#include "impatience/stats/timeseries.hpp"

#include <gtest/gtest.h>

namespace impatience::stats {
namespace {

TEST(BinnedSeries, BinCountCoversHorizon) {
  BinnedSeries s(10.0, 100.0);
  EXPECT_EQ(s.bin_count(), 10u);
  BinnedSeries partial(10.0, 95.0);
  EXPECT_EQ(partial.bin_count(), 10u);  // ceil
}

TEST(BinnedSeries, RateSeries) {
  BinnedSeries s(10.0, 30.0);
  s.add(1.0, 5.0);
  s.add(2.0, 5.0);
  s.add(15.0, 20.0);
  const auto rates = s.rate_series();
  ASSERT_EQ(rates.size(), 3u);
  EXPECT_DOUBLE_EQ(rates[0].time, 5.0);
  EXPECT_DOUBLE_EQ(rates[0].value, 1.0);   // 10 / width 10
  EXPECT_DOUBLE_EQ(rates[1].value, 2.0);   // 20 / 10
  EXPECT_DOUBLE_EQ(rates[2].value, 0.0);
}

TEST(BinnedSeries, MeanSeries) {
  BinnedSeries s(10.0, 20.0);
  s.add(0.0, 2.0);
  s.add(5.0, 4.0);
  const auto means = s.mean_series();
  ASSERT_EQ(means.size(), 2u);
  EXPECT_DOUBLE_EQ(means[0].value, 3.0);
  EXPECT_DOUBLE_EQ(means[1].value, 0.0);  // empty bin reports 0
}

TEST(BinnedSeries, EventsBeyondHorizonClampToLastBin) {
  BinnedSeries s(10.0, 20.0);
  s.add(1000.0, 7.0);
  EXPECT_DOUBLE_EQ(s.rate_series().back().value, 0.7);
}

TEST(BinnedSeries, NegativeTimesClampToFirstBin) {
  BinnedSeries s(10.0, 20.0);
  s.add(-5.0, 3.0);
  EXPECT_DOUBLE_EQ(s.rate_series().front().value, 0.3);
}

TEST(BinnedSeries, TotalAccumulates) {
  BinnedSeries s(1.0, 5.0);
  s.add(0.5, 1.0);
  s.add(3.2, -2.0);
  EXPECT_DOUBLE_EQ(s.total(), -1.0);
}

TEST(BinnedSeries, ThrowsOnBadParams) {
  EXPECT_THROW(BinnedSeries(0.0, 10.0), std::invalid_argument);
  EXPECT_THROW(BinnedSeries(1.0, 0.0), std::invalid_argument);
}

TEST(BinnedSeries, BinIndexMatchesAdd) {
  BinnedSeries s(10.0, 30.0);
  EXPECT_EQ(s.bin_index(0.0), 0u);
  EXPECT_EQ(s.bin_index(9.999), 0u);
  EXPECT_EQ(s.bin_index(10.0), 1u);
  EXPECT_EQ(s.bin_index(-5.0), 0u);     // clamp below
  EXPECT_EQ(s.bin_index(1000.0), 2u);   // clamp to last bin
}

TEST(BinnedSeries, AddBatchEqualsRepeatedAdds) {
  BinnedSeries direct(10.0, 30.0);
  BinnedSeries batched(10.0, 30.0);
  direct.add(12.0, 1.5);
  direct.add(13.0, 2.5);
  direct.add(14.0, 3.0);
  batched.add_batch(batched.bin_index(12.0), 1.5 + 2.5 + 3.0, 3);
  const auto d_rate = direct.rate_series();
  const auto b_rate = batched.rate_series();
  const auto d_mean = direct.mean_series();
  const auto b_mean = batched.mean_series();
  for (std::size_t i = 0; i < d_rate.size(); ++i) {
    EXPECT_DOUBLE_EQ(b_rate[i].value, d_rate[i].value);
    EXPECT_DOUBLE_EQ(b_mean[i].value, d_mean[i].value);
  }
  EXPECT_DOUBLE_EQ(batched.total(), direct.total());
}

TEST(BinnedSeriesBatcher, MatchesDirectAddsAcrossBinChanges) {
  // Runs of same-bin events separated by bin changes — including a jump
  // backwards in time, which the batcher must handle with a plain flush.
  const double events[][2] = {{1.0, 2.0},  {2.0, 3.0},  {3.0, 1.0},
                              {15.0, 4.0}, {16.0, 0.5}, {5.0, 7.0},
                              {25.0, 1.0}, {29.0, 2.0}};
  BinnedSeries direct(10.0, 30.0);
  BinnedSeries batched(10.0, 30.0);
  BinnedSeries::Batcher batcher(batched);
  for (const auto& e : events) {
    direct.add(e[0], e[1]);
    batcher.add(e[0], e[1]);
  }
  batcher.flush();
  const auto d = direct.rate_series();
  const auto b = batched.rate_series();
  ASSERT_EQ(b.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_DOUBLE_EQ(b[i].value, d[i].value) << "bin " << i;
  }
  EXPECT_DOUBLE_EQ(batched.total(), direct.total());
}

TEST(BinnedSeriesBatcher, FlushIsIdempotentAndEmptyFlushIsInvisible) {
  BinnedSeries series(10.0, 20.0);
  BinnedSeries::Batcher batcher(series);
  batcher.flush();  // nothing buffered: no-op
  EXPECT_DOUBLE_EQ(series.total(), 0.0);
  batcher.add(5.0, 3.0);
  batcher.flush();
  batcher.flush();  // second flush must not double-count
  EXPECT_DOUBLE_EQ(series.total(), 3.0);
  EXPECT_DOUBLE_EQ(series.mean_series()[0].value, 3.0);
}

}  // namespace
}  // namespace impatience::stats
