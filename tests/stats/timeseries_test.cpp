#include "impatience/stats/timeseries.hpp"

#include <gtest/gtest.h>

namespace impatience::stats {
namespace {

TEST(BinnedSeries, BinCountCoversHorizon) {
  BinnedSeries s(10.0, 100.0);
  EXPECT_EQ(s.bin_count(), 10u);
  BinnedSeries partial(10.0, 95.0);
  EXPECT_EQ(partial.bin_count(), 10u);  // ceil
}

TEST(BinnedSeries, RateSeries) {
  BinnedSeries s(10.0, 30.0);
  s.add(1.0, 5.0);
  s.add(2.0, 5.0);
  s.add(15.0, 20.0);
  const auto rates = s.rate_series();
  ASSERT_EQ(rates.size(), 3u);
  EXPECT_DOUBLE_EQ(rates[0].time, 5.0);
  EXPECT_DOUBLE_EQ(rates[0].value, 1.0);   // 10 / width 10
  EXPECT_DOUBLE_EQ(rates[1].value, 2.0);   // 20 / 10
  EXPECT_DOUBLE_EQ(rates[2].value, 0.0);
}

TEST(BinnedSeries, MeanSeries) {
  BinnedSeries s(10.0, 20.0);
  s.add(0.0, 2.0);
  s.add(5.0, 4.0);
  const auto means = s.mean_series();
  ASSERT_EQ(means.size(), 2u);
  EXPECT_DOUBLE_EQ(means[0].value, 3.0);
  EXPECT_DOUBLE_EQ(means[1].value, 0.0);  // empty bin reports 0
}

TEST(BinnedSeries, EventsBeyondHorizonClampToLastBin) {
  BinnedSeries s(10.0, 20.0);
  s.add(1000.0, 7.0);
  EXPECT_DOUBLE_EQ(s.rate_series().back().value, 0.7);
}

TEST(BinnedSeries, NegativeTimesClampToFirstBin) {
  BinnedSeries s(10.0, 20.0);
  s.add(-5.0, 3.0);
  EXPECT_DOUBLE_EQ(s.rate_series().front().value, 0.3);
}

TEST(BinnedSeries, TotalAccumulates) {
  BinnedSeries s(1.0, 5.0);
  s.add(0.5, 1.0);
  s.add(3.2, -2.0);
  EXPECT_DOUBLE_EQ(s.total(), -1.0);
}

TEST(BinnedSeries, ThrowsOnBadParams) {
  EXPECT_THROW(BinnedSeries(0.0, 10.0), std::invalid_argument);
  EXPECT_THROW(BinnedSeries(1.0, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace impatience::stats
