#include "impatience/stats/summary.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace impatience::stats {
namespace {

TEST(Summary, EmptyDefaults) {
  Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stderr_mean(), 0.0);
}

TEST(Summary, SingleValue) {
  Summary s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(Summary, KnownMoments) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, StderrShrinksWithN) {
  Summary s;
  for (int i = 0; i < 100; ++i) s.add(i % 2 == 0 ? 1.0 : -1.0);
  EXPECT_NEAR(s.stderr_mean(), s.stddev() / 10.0, 1e-12);
}

TEST(Summary, MergeMatchesSequential) {
  Summary a, b, both;
  for (int i = 0; i < 50; ++i) {
    const double v = std::sin(i * 0.7) * 10.0;
    (i < 20 ? a : b).add(v);
    both.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_NEAR(a.mean(), both.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), both.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), both.min());
  EXPECT_DOUBLE_EQ(a.max(), both.max());
}

TEST(Summary, MergeWithEmpty) {
  Summary a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean);
  EXPECT_EQ(empty.count(), 2u);
}

TEST(Summary, NegativeValues) {
  Summary s;
  s.add(-5.0);
  s.add(-1.0);
  EXPECT_DOUBLE_EQ(s.mean(), -3.0);
  EXPECT_DOUBLE_EQ(s.min(), -5.0);
  EXPECT_DOUBLE_EQ(s.max(), -1.0);
}

}  // namespace
}  // namespace impatience::stats
