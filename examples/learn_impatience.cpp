// Learning user impatience from feedback (the paper's closing Section 7
// question) and feeding it back into the replication scheme:
//
//   1. A deployment runs with a *mis-specified* impatience model.
//   2. Every fulfilment yields feedback: did the user still consume the
//      content after waiting that long? (Bernoulli of the true h.)
//   3. fit_delay_utility() turns the feedback into a monotone tabulated
//      utility; its transforms tune OPT and QCR's reaction function.
//   4. The relearned system recovers most of the oracle's welfare.
#include <iostream>

#include "impatience/core/experiment.hpp"
#include "impatience/util/flags.hpp"
#include "impatience/util/table.hpp"
#include "impatience/utility/families.hpp"
#include "impatience/utility/fit.hpp"

using namespace impatience;

namespace {

/// Runs OPT for `planning` utility but scores with the `truth` utility;
/// returns the mean observed utility.
double run_opt_planned_vs_true(const core::Scenario& scenario,
                               const utility::DelayUtility& planning,
                               const utility::DelayUtility& truth,
                               util::Rng& rng, int trials) {
  double total = 0.0;
  for (int t = 0; t < trials; ++t) {
    util::Rng pr = rng.split();
    const auto set = core::build_competitors(
        scenario, planning, core::OptMode::kHomogeneous, pr);
    util::Rng rr = rng.split();
    total += core::run_fixed(scenario, truth, "OPT", set[0].placement,
                             core::SimOptions{}, rr)
                 .observed_utility();
  }
  return total / trials;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto nodes = static_cast<trace::NodeId>(flags.get_int("nodes", 40));
  const trace::Slot slots = flags.get_long("slots", 4000);
  const int trials = flags.get_int("trials", 3);

  // Ground truth the operator does not know: users tolerate ~25 minutes.
  utility::StepUtility truth(25.0);
  // The operator's initial guess: very patient users.
  utility::StepUtility guess(500.0);

  util::Rng rng(314159);
  auto trace = trace::generate_poisson({nodes, slots, 0.05}, rng);
  auto scenario = core::make_scenario(
      std::move(trace),
      core::Catalog::pareto(static_cast<core::ItemId>(nodes), 1.0, 1.0), 5);

  std::cout << "Learning impatience from feedback (" << nodes
            << " nodes, true deadline 25 min, initial guess 500 min)\n";

  // Phase 1: run with the wrong guess, collecting real per-fulfilment
  // feedback via the simulator hook. Each fulfilment reports its actual
  // delay; the user consumes the item with probability h_true(delay).
  // To probe the impatient tail we also jitter a share of deliveries
  // (operators would A/B-test delayed delivery the same way).
  std::vector<utility::FeedbackSample> feedback;
  {
    util::Rng fr = rng.split();
    core::SimOptions options;
    options.on_fulfillment = [&](core::ItemId, trace::NodeId, double delay,
                                 double) {
      double observed_delay = std::max(delay, 0.5);
      if (fr.bernoulli(0.3)) {
        observed_delay += fr.exponential(1.0 / 20.0);  // A/B delay probe
      }
      feedback.push_back(
          {observed_delay,
           fr.bernoulli(truth.value(observed_delay)) ? 1.0 : 0.0});
    };
    util::Rng r = rng.split();
    const auto result =
        core::run_qcr(scenario, guess, core::QcrOptions{}, options, r);
    std::cout << "phase 1: mean fulfilment delay " << result.mean_delay
              << " min, " << feedback.size() << " feedback samples\n";
  }

  // Phase 2: fit and redeploy.
  const auto fitted = utility::fit_delay_utility(feedback, {.bins = 16});
  std::cout << "fitted h(t) at t = 5 / 25 / 60: " << fitted.value(5.0)
            << " / " << fitted.value(25.0) << " / " << fitted.value(60.0)
            << "  (truth: 1 / 1 / 0)\n";

  util::TablePrinter table(
      {"planning model", "true welfare achieved", "vs oracle %"});
  table.set_precision(4);
  util::Rng r1 = rng.split(), r2 = rng.split(), r3 = rng.split();
  const double oracle =
      run_opt_planned_vs_true(scenario, truth, truth, r1, trials);
  const double wrong =
      run_opt_planned_vs_true(scenario, guess, truth, r2, trials);
  const double learned =
      run_opt_planned_vs_true(scenario, fitted, truth, r3, trials);
  table.row("oracle (knows truth)", oracle, 0.0);
  table.row("initial guess (tau=500)", wrong,
            core::normalized_loss_percent(wrong, oracle));
  table.row("learned from feedback", learned,
            core::normalized_loss_percent(learned, oracle));
  table.print(std::cout);

  // QCR with a reaction tuned to a given planning model, *scored* under
  // the truth.
  auto run_qcr_planned_vs_true = [&](const utility::DelayUtility& planning,
                                     util::Rng& r) {
    const double servers = static_cast<double>(nodes);
    const double x_uniform = 5.0;  // rho * |S| / I with I = |S|
    const double psi_u =
        utility::psi(planning, scenario.mu, servers, servers / x_uniform);
    utility::ReactionFunction reaction(planning, scenario.mu, servers,
                                       psi_u > 0.0 ? 0.25 / psi_u : 1.0);
    core::QcrPolicy policy(
        "QCR",
        [reaction, servers](double y) {
          return std::min(reaction(std::min(y, servers)), 5.0);
        },
        core::QcrPolicy::MandateRouting::kOn,
        static_cast<long>(5) * nodes);
    core::SimOptions options;
    options.cache_capacity = 5;
    double total = 0.0;
    for (int t = 0; t < trials; ++t) {
      util::Rng tr = r.split();
      total += core::simulate(scenario.trace, scenario.catalog, truth,
                              policy, options, tr)
                   .observed_utility();
    }
    return total / trials;
  };
  util::Rng rq1 = rng.split(), rq2 = rng.split(), rq3 = rng.split();
  util::TablePrinter qcr_table(
      {"QCR reaction tuned to", "true welfare achieved", "vs oracle %"});
  qcr_table.set_precision(4);
  const double qcr_truth = run_qcr_planned_vs_true(truth, rq1);
  const double qcr_wrong = run_qcr_planned_vs_true(guess, rq2);
  const double qcr_learned = run_qcr_planned_vs_true(fitted, rq3);
  qcr_table.row("truth", qcr_truth,
                core::normalized_loss_percent(qcr_truth, oracle));
  qcr_table.row("initial guess", qcr_wrong,
                core::normalized_loss_percent(qcr_wrong, oracle));
  qcr_table.row("learned from feedback", qcr_learned,
                core::normalized_loss_percent(qcr_learned, oracle));
  qcr_table.print(std::cout);
  std::cout << "Takeaway: feedback-fitted impatience closes most of the "
               "gap a mis-specified\nmodel leaves, for the centralized "
               "optimum and for QCR alike.\n";
  return 0;
}
