// Time-critical information dissemination (Section 3.2's middle column):
// emergency bulletins carried by a fleet of vehicles acting as dedicated
// cache servers for pedestrian clients. The value of a bulletin is huge
// when fresh and decays fast — the inverse-power utility family with
// 1 < alpha < 2, which the paper restricts to the dedicated-node case
// (h(0+) = infinity, so client self-hits must be impossible).
#include <iostream>

#include "impatience/core/experiment.hpp"
#include "impatience/util/flags.hpp"
#include "impatience/util/table.hpp"
#include "impatience/utility/families.hpp"

using namespace impatience;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto vehicles =
      static_cast<trace::NodeId>(flags.get_int("vehicles", 20));
  const auto pedestrians =
      static_cast<trace::NodeId>(flags.get_int("pedestrians", 30));
  const auto bulletins =
      static_cast<core::ItemId>(flags.get_int("bulletins", 15));
  const int cache = flags.get_int("cache", 3);
  const double alpha = flags.get_double("alpha", 1.5);
  const trace::Slot slots = flags.get_long("slots", 2000);

  std::cout << "Emergency dissemination: " << vehicles
            << " vehicle servers, " << pedestrians
            << " pedestrian clients, " << bulletins << " bulletins, alpha="
            << alpha << "\n";

  // One combined contact trace over servers [0, V) and clients [V, V+P).
  util::Rng rng(911);
  const auto total = static_cast<trace::NodeId>(vehicles + pedestrians);
  auto contacts = trace::generate_poisson({total, slots, 0.04}, rng);

  const auto catalog = core::Catalog::pareto(bulletins, 1.0, 1.5);
  utility::PowerUtility urgency(alpha);

  const auto population = core::Population::dedicated(vehicles, pedestrians);

  // Optimal dedicated-node allocation (Theorem 2 greedy).
  alloc::HomogeneousModel model{0.04, vehicles, pedestrians,
                                alloc::SystemMode::kDedicated};
  const auto opt_counts = alloc::homogeneous_greedy(
      catalog.demands(), urgency, model, cache * static_cast<int>(vehicles));

  std::cout << "optimal bulletin replica counts:";
  for (core::ItemId i = 0; i < bulletins; ++i) {
    std::cout << ' ' << opt_counts.x[i];
  }
  std::cout << "\n(time-critical utilities skew hard towards popular "
               "bulletins: x_i ~ d^(1/(2-alpha)))\n";

  // Simulate the optimal fixed allocation against QCR (running on the
  // vehicle fleet, driven by pedestrian query counters).
  core::SimOptions options;
  options.cache_capacity = cache;
  options.sticky_replicas = false;

  util::Rng place_rng = rng.split();
  options.initial_placement =
      alloc::place_counts(opt_counts, vehicles, cache, place_rng);
  core::StaticPolicy static_policy;
  util::Rng r1 = rng.split();
  const auto opt_run = core::simulate(contacts, catalog, urgency,
                                      static_policy, population, options, r1);

  core::SimOptions qcr_options;
  qcr_options.cache_capacity = cache;
  qcr_options.sticky_replicas = true;
  utility::ReactionFunction reaction(urgency, 0.04,
                                     static_cast<double>(vehicles), 0.25);
  core::QcrPolicy qcr("QCR", [reaction](double y) { return reaction(y); },
                      core::QcrPolicy::MandateRouting::kOn);
  util::Rng r2 = rng.split();
  const auto qcr_run = core::simulate(contacts, catalog, urgency, qcr,
                                      population, qcr_options, r2);

  util::TablePrinter table({"scheme", "utility", "fulfilments",
                            "mean delay (slots)"});
  table.set_precision(4);
  table.row("OPT (oracle placement)", opt_run.observed_utility(),
            static_cast<long>(opt_run.fulfillments), opt_run.mean_delay);
  table.row("QCR (local only)", qcr_run.observed_utility(),
            static_cast<long>(qcr_run.fulfillments), qcr_run.mean_delay);
  table.print(std::cout);
  std::cout << "QCR vs oracle: "
            << core::normalized_loss_percent(qcr_run.observed_utility(),
                                             opt_run.observed_utility())
            << "%\n";
  return 0;
}
