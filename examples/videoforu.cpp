// The paper's motivating scenario (Section 1): the imaginary startup
// VideoForU distributes episodes with embedded ads over opportunistic
// contacts between subscribers' phones. Revenue accrues when a user
// actually watches a delivered episode — the probability of which decays
// with waiting time (exponential delay-utility e^{-nu t}).
//
// The example runs the same deployment under a *patient* and an
// *impatient* user population and shows the paper's headline effect: the
// right replication rule depends on impatience. Passive one-copy
// replication is fine when users wait; once they don't, the tuned QCR
// reaction recovers a chunk of the oracle's ad revenue with local
// knowledge only.
#include <iostream>

#include "impatience/core/experiment.hpp"
#include "impatience/util/flags.hpp"
#include "impatience/util/table.hpp"
#include "impatience/utility/families.hpp"

using namespace impatience;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  // Scaled-down deployment: the paper imagines 5000 users x 500 episodes;
  // we default to 60 subscribers x 80 episodes so the example runs in
  // seconds. Scale up with --nodes/--items.
  const auto nodes = static_cast<trace::NodeId>(flags.get_int("nodes", 60));
  const auto items = static_cast<core::ItemId>(flags.get_int("items", 80));
  const int cache_slots = flags.get_int("cache", 3);  // 3-episode cache
  const int days = flags.get_int("days", 3);

  std::cout << "VideoForU: " << nodes << " subscribers, " << items
            << " episodes, " << cache_slots << "-episode caches, " << days
            << " simulated days\n";

  util::Rng rng(5000);
  trace::InfocomLikeParams mobility;  // commuters: diurnal + bursty
  mobility.num_nodes = nodes;
  mobility.days = days;
  auto contacts = trace::generate_infocom_like(mobility, rng);
  auto scenario = core::make_scenario(
      std::move(contacts), core::Catalog::pareto(items, 1.0, 1.0),
      cache_slots);

  struct Population {
    const char* label;
    double nu;  // per-minute interest decay
  };
  const Population populations[] = {
      {"patient users (interest half-life ~8h)", 0.0014},
      {"impatient users (interest half-life ~14min)", 0.05},
  };

  for (const auto& pop : populations) {
    utility::ExponentialUtility impatience(
        flags.has("nu") ? flags.get_double("nu", pop.nu) : pop.nu);
    std::cout << "\n-- " << pop.label << " (nu=" << impatience.nu()
              << ") --\n";

    struct Run {
      std::string name;
      double utility;
      double impressions_per_day;
    };
    std::vector<Run> runs;
    auto record = [&](const std::string& name,
                      const core::SimulationResult& r) {
      // total_gain = expected watched episodes (ad impressions) overall.
      runs.push_back({name, r.observed_utility(),
                      r.total_gain / static_cast<double>(days)});
    };

    // Passive replication (one replica per fulfilment; what a naive
    // podcast-style system does).
    {
      auto policy = core::make_passive_policy(0.5);
      core::SimOptions options;
      options.cache_capacity = cache_slots;
      util::Rng r = rng.split();
      record("PASSIVE", core::simulate(scenario.trace, scenario.catalog,
                                       impatience, *policy, options, r));
    }
    // Impatience-tuned QCR.
    {
      util::Rng r = rng.split();
      record("QCR", core::run_qcr(scenario, impatience, core::QcrOptions{},
                                  core::SimOptions{}, r));
    }
    // The control-channel optimum, as an upper reference.
    {
      util::Rng pr = rng.split();
      const auto set = core::build_competitors(
          scenario, impatience, core::OptMode::kEstimated, pr);
      util::Rng r = rng.split();
      record("OPT (oracle)",
             core::run_fixed(scenario, impatience, "OPT", set[0].placement,
                             core::SimOptions{}, r));
    }

    util::TablePrinter table({"scheme", "utility (gain/min)",
                              "ad impressions/day", "vs oracle %"});
    table.set_precision(4);
    const double oracle = runs.back().utility;
    for (const auto& run : runs) {
      table.row(run.name, run.utility, run.impressions_per_day,
                core::normalized_loss_percent(run.utility, oracle));
    }
    table.print(std::cout);
  }

  std::cout << "\nTakeaway: with patient users passive replication is "
               "already near-optimal;\nimpatient users change the optimal "
               "allocation, and the Table-1-tuned QCR reaction\nrecovers "
               "the difference without any infrastructure or global "
               "state.\n";
  return 0;
}
