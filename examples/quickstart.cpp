// Quickstart: the library in ~60 lines.
//
// 1. Pick a delay-utility (how impatient are your users?).
// 2. Generate (or load) a contact trace.
// 3. Compute the optimal allocation centrally (Theorem 2) ...
// 4. ... or just run QCR, which converges to it with local knowledge only.
#include <iostream>

#include "impatience/core/experiment.hpp"
#include "impatience/utility/families.hpp"

using namespace impatience;

int main() {
  // Users lose interest after 10 minutes.
  utility::StepUtility utility(10.0);

  // 30 phones, homogeneous opportunistic contacts, 2000 one-minute slots.
  util::Rng rng(2009);
  auto contacts = trace::generate_poisson({30, 2000, 0.05}, rng);

  // 30 content items with Pareto popularity; each phone caches 4 items.
  auto scenario = core::make_scenario(std::move(contacts),
                                      core::Catalog::pareto(30, 1.0, 1.0),
                                      /*capacity=*/4);

  // --- centralized optimum (needs global knowledge) --------------------
  alloc::HomogeneousModel model{scenario.mu, 30, 30,
                                alloc::SystemMode::kPureP2P};
  const auto opt_counts = alloc::homogeneous_greedy(
      scenario.catalog.demands(), utility, model, 4 * 30);
  std::cout << "optimal replica counts (top 5 items):";
  for (int i = 0; i < 5; ++i) std::cout << ' ' << opt_counts.x[i];
  const double opt_welfare = alloc::welfare_homogeneous(
      opt_counts, scenario.catalog.demands(), utility, model);
  std::cout << "\nanalytic optimal welfare: " << opt_welfare << "\n";

  // Simulate the frozen optimal allocation.
  util::Rng run_rng = rng.split();
  const auto placement =
      alloc::place_counts(opt_counts, 30, 4, run_rng);
  const auto opt_run = core::run_fixed(scenario, utility, "OPT", placement,
                                       core::SimOptions{}, run_rng);
  std::cout << "simulated OPT utility:    " << opt_run.observed_utility()
            << "  (" << opt_run.fulfillments << " fulfilments, mean delay "
            << opt_run.mean_delay << " min)\n";

  // --- QCR: same thing with purely local decisions ---------------------
  util::Rng qcr_rng = rng.split();
  const auto qcr_run = core::run_qcr(scenario, utility, core::QcrOptions{},
                                     core::SimOptions{}, qcr_rng);
  std::cout << "simulated QCR utility:    " << qcr_run.observed_utility()
            << "  (" << qcr_run.replicas_written
            << " replicas written, no control channel)\n";
  std::cout << "QCR vs OPT: "
            << core::normalized_loss_percent(qcr_run.observed_utility(),
                                             opt_run.observed_utility())
            << "%\n";
  return 0;
}
