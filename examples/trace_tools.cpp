// Contact-trace utility CLI: generate synthetic traces, convert external
// formats to the native one, and print descriptive statistics.
//
//   trace_tools generate --kind poisson|infocom|cabspotting --out t.trace
//   trace_tools convert  --crawdad in.dat --out t.trace [--slot-seconds 60]
//   trace_tools convert  --gps in.log --out t.trace [--range 200]
//   trace_tools stats    t.trace
#include <iostream>

#include "impatience/stats/percentile.hpp"
#include "impatience/trace/generators.hpp"
#include "impatience/trace/parsers.hpp"
#include "impatience/util/flags.hpp"
#include "impatience/util/table.hpp"

using namespace impatience;

namespace {

int cmd_generate(const util::Flags& flags) {
  const std::string kind = flags.get_string("kind", "poisson");
  const std::string out = flags.get_string("out", "");
  if (out.empty()) {
    std::cerr << "generate: --out <file> is required\n";
    return 2;
  }
  util::Rng rng(static_cast<std::uint64_t>(flags.get_long("seed", 1)));
  trace::ContactTrace result = [&]() {
    if (kind == "poisson") {
      trace::PoissonTraceParams p;
      p.num_nodes = static_cast<trace::NodeId>(flags.get_int("nodes", 50));
      p.duration = flags.get_long("slots", 5000);
      p.mu = flags.get_double("mu", 0.05);
      return trace::generate_poisson(p, rng);
    }
    if (kind == "infocom") {
      trace::InfocomLikeParams p;
      p.num_nodes = static_cast<trace::NodeId>(flags.get_int("nodes", 50));
      p.days = flags.get_int("days", 3);
      return trace::generate_infocom_like(p, rng);
    }
    if (kind == "cabspotting") {
      trace::CabspottingLikeParams p;
      p.mobility.num_nodes =
          static_cast<trace::NodeId>(flags.get_int("nodes", 50));
      p.duration = flags.get_long("slots", 1440);
      return trace::generate_cabspotting_like(p, rng);
    }
    throw std::invalid_argument("unknown --kind: " + kind);
  }();
  trace::write_native_file(result, out);
  std::cout << "wrote " << result.size() << " contacts (" << kind << ") to "
            << out << '\n';
  return 0;
}

int cmd_convert(const util::Flags& flags) {
  const std::string out = flags.get_string("out", "");
  if (out.empty()) {
    std::cerr << "convert: --out <file> is required\n";
    return 2;
  }
  trace::ContactTrace result = [&]() {
    if (flags.has("crawdad")) {
      trace::CrawdadOptions opt;
      opt.slot_seconds = flags.get_double("slot-seconds", 60.0);
      return trace::parse_crawdad_file(flags.get_string("crawdad", ""), opt);
    }
    if (flags.has("gps")) {
      trace::GpsOptions opt;
      opt.slot_seconds = flags.get_double("slot-seconds", 60.0);
      opt.contact_range = flags.get_double("range", 200.0);
      opt.coordinates_are_latlon = flags.get_bool("latlon", false);
      return trace::parse_gps_file(flags.get_string("gps", ""), opt);
    }
    if (flags.has("one")) {
      trace::OneOptions opt;
      opt.slot_seconds = flags.get_double("slot-seconds", 60.0);
      return trace::parse_one_events_file(flags.get_string("one", ""), opt);
    }
    throw std::invalid_argument(
        "convert: need --crawdad, --gps or --one input");
  }();
  trace::write_native_file(result, out);
  std::cout << "wrote " << result.size() << " contacts to " << out << '\n';
  return 0;
}

int cmd_stats(const util::Flags& flags) {
  if (flags.positional().size() < 2) {
    std::cerr << "stats: need a trace file\n";
    return 2;
  }
  const auto t = trace::read_native_file(flags.positional()[1]);
  util::TablePrinter table({"metric", "value"});
  table.set_precision(5);
  table.row("nodes", static_cast<long>(t.num_nodes()));
  table.row("duration (slots)", static_cast<long>(t.duration()));
  table.row("contacts", static_cast<long>(t.size()));
  const auto rates = trace::estimate_rates(t);
  table.row("mean pair rate", rates.mean_rate());
  table.row("inter-contact CV", trace::inter_contact_cv(t));
  auto gaps = trace::inter_contact_times(t);
  if (!gaps.empty()) {
    const auto qs = stats::percentiles(gaps, {0.5, 0.9, 0.99});
    table.row("inter-contact p50", qs[0]);
    table.row("inter-contact p90", qs[1]);
    table.row("inter-contact p99", qs[2]);
  }
  table.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  if (flags.positional().empty()) {
    std::cout
        << "usage:\n"
           "  trace_tools generate --kind poisson|infocom|cabspotting "
           "--out t.trace [--nodes N] [--slots S] [--seed X]\n"
           "  trace_tools convert (--crawdad f | --gps f | --one f) --out "
           "t.trace\n"
           "  trace_tools stats t.trace\n";
    return 0;
  }
  try {
    const std::string& cmd = flags.positional()[0];
    if (cmd == "generate") return cmd_generate(flags);
    if (cmd == "convert") return cmd_convert(flags);
    if (cmd == "stats") return cmd_stats(flags);
    std::cerr << "unknown command: " << cmd << '\n';
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
