// Figure 6: vehicular scenario (Cabspotting-like trace).
//   (a) loss vs OPT sweeping alpha (power utility)
//   (b) loss vs OPT sweeping tau (step utility)
//   (c) loss vs OPT sweeping nu (exponential utility)
// The real taxi GPS trace is not redistributable; simulated random-
// waypoint taxis with hotspot attraction reproduce the heavy-tailed
// vehicular contact statistics (see DESIGN.md). A real GPS log can be
// supplied with --trace <file> ("id time x y" rows, 200 m range).
#include <iostream>

#include "common.hpp"
#include "impatience/trace/parsers.hpp"
#include "impatience/trace/partition.hpp"
#include "impatience/utility/families.hpp"

using namespace impatience;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const int trials = flags.get_int("trials", 5);
  const int rho = flags.get_int("rho", 5);
  const double total_demand = flags.get_double("demand", 1.0);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_long("seed", 415));

  bench::banner("fig6", "Cabspotting-like vehicular trace");

  util::Rng rng(seed);
  trace::ContactTrace contact_trace = [&]() {
    if (flags.has("trace")) {
      trace::GpsOptions opt;
      return trace::parse_gps_file(flags.get_string("trace", ""), opt);
    }
    trace::CabspottingLikeParams params;
    params.mobility.num_nodes =
        static_cast<trace::NodeId>(flags.get_int("nodes", 50));
    params.duration = flags.get_long("slots", 1440);  // one day, 1-min slots
    util::Rng gen_rng = rng.split();
    return trace::generate_cabspotting_like(params, gen_rng);
  }();
  std::cout << "trace: " << contact_trace.num_nodes() << " taxis, "
            << contact_trace.duration() << " slots, "
            << contact_trace.size() << " contacts, inter-contact CV "
            << trace::inter_contact_cv(contact_trace) << '\n';
  // Slot concurrency profile: how much meeting-level parallelism
  // (--intra-threads, docs/perf.md §5) this trace exposes.
  const trace::SlotConflictStats conflict =
      contact_trace.slot_conflict_stats();
  std::cout << "slot concurrency: mean " << conflict.mean_slot_meetings
            << " / max " << conflict.max_slot_meetings
            << " meetings per active slot, max wave depth "
            << conflict.max_wave_depth << ", mean wave width "
            << conflict.mean_wave_width << '\n';

  const auto catalog = core::Catalog::pareto(
      static_cast<core::ItemId>(flags.get_int("items", 50)), 1.0,
      total_demand);
  auto scenario =
      core::make_scenario(std::move(contact_trace), catalog, rho);

  bench::ComparisonConfig config;
  config.trials = trials;
  config.opt_mode = core::OptMode::kEstimated;
  bench::apply_engine_flags(flags, config, seed);
  engine::RunReport manifest;

  // Panel (a): power utility, alpha sweep.
  {
    config.label = "fig6-power";
    std::vector<bench::ComparisonPoint> points;
    std::uint64_t index = 0;
    for (double alpha : {-2.0, -1.0, -0.5, 0.0, 0.5, 0.9}) {
      utility::PowerUtility u(alpha);
      const std::uint64_t point_seed =
          engine::child_seed(seed, config.label, index++);
      points.push_back(bench::run_comparison(scenario, u, alpha, config,
                                             point_seed, &manifest));
    }
    bench::print_loss_table(
        "Figure 6(a): power delay-utility, loss vs OPT (%) by alpha",
        "alpha", points);
    bench::maybe_write_csv(flags, "fig6_power.csv", "alpha", points);
  }

  // Panel (b): step utility, tau sweep.
  {
    config.label = "fig6-step";
    std::vector<bench::ComparisonPoint> points;
    std::uint64_t index = 0;
    for (double tau : {1.0, 10.0, 30.0, 100.0, 300.0, 1000.0}) {
      utility::StepUtility u(tau);
      const std::uint64_t point_seed =
          engine::child_seed(seed, config.label, index++);
      points.push_back(bench::run_comparison(scenario, u, tau, config,
                                             point_seed, &manifest));
    }
    bench::print_loss_table(
        "Figure 6(b): step delay-utility, loss vs OPT (%) by tau", "tau",
        points);
    bench::maybe_write_csv(flags, "fig6_step.csv", "tau", points);
  }

  // Panel (c): exponential utility, nu sweep.
  {
    config.label = "fig6-exp";
    std::vector<bench::ComparisonPoint> points;
    std::uint64_t index = 0;
    for (double nu : {0.0001, 0.001, 0.01, 0.1, 1.0}) {
      utility::ExponentialUtility u(nu);
      const std::uint64_t point_seed =
          engine::child_seed(seed, config.label, index++);
      points.push_back(bench::run_comparison(scenario, u, nu, config,
                                             point_seed, &manifest));
    }
    bench::print_loss_table(
        "Figure 6(c): exponential delay-utility, loss vs OPT (%) by nu",
        "nu", points);
    bench::maybe_write_csv(flags, "fig6_exp.csv", "nu", points);
  }

  std::cout << "expected shape (paper): SQRT degraded vs homogeneous; DOM "
               "improves under\nburstiness; QCR (the only local-information "
               "scheme) remains competitive.\n";
  manifest.root_seed = seed;
  bench::maybe_write_manifest(flags, "fig6_manifest.json", manifest,
                              {{"trials", std::to_string(trials)},
                               {"rho", std::to_string(rho)},
                               {"demand", std::to_string(total_demand)},
                               {"seed", std::to_string(seed)},
                               {"kernel",
                                core::kernel_name(config.sim.kernel)},
                               {"intra_threads",
                                std::to_string(config.sim.meeting_parallelism)},
                               {"mean_slot_meetings",
                                std::to_string(conflict.mean_slot_meetings)},
                               {"max_slot_meetings",
                                std::to_string(conflict.max_slot_meetings)},
                               {"max_distinct_nodes",
                                std::to_string(conflict.max_distinct_nodes)},
                               {"max_wave_depth",
                                std::to_string(conflict.max_wave_depth)},
                               {"mean_wave_width",
                                std::to_string(conflict.mean_wave_width)}});
  return 0;
}
