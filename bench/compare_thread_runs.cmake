# Test driver: run BINARY twice with the given ARGS, --threads 1 vs
# --threads 4, and require byte-identical stdout — the engine's
# determinism contract at the harness level.
#
# Usage: cmake -DBINARY=<path> -DARGS=<;-list> -P compare_thread_runs.cmake
separate_arguments(arg_list UNIX_COMMAND "${ARGS}")

execute_process(
  COMMAND ${BINARY} ${arg_list} --threads 1
  OUTPUT_VARIABLE out_serial
  RESULT_VARIABLE rc_serial
  ERROR_VARIABLE err_serial)
if(NOT rc_serial EQUAL 0)
  message(FATAL_ERROR "--threads 1 run failed (${rc_serial}): ${err_serial}")
endif()

execute_process(
  COMMAND ${BINARY} ${arg_list} --threads 4
  OUTPUT_VARIABLE out_wide
  RESULT_VARIABLE rc_wide
  ERROR_VARIABLE err_wide)
if(NOT rc_wide EQUAL 0)
  message(FATAL_ERROR "--threads 4 run failed (${rc_wide}): ${err_wide}")
endif()

if(NOT out_serial STREQUAL out_wide)
  message(FATAL_ERROR
    "stdout differs between --threads 1 and --threads 4\n"
    "--- threads=1 ---\n${out_serial}\n--- threads=4 ---\n${out_wide}")
endif()
