// Extension (paper Section 7, items (1) and (2)): heterogeneity and
// clustered demand studied systematically. Nodes form communities with
// strong intra- and weak inter-community contact rates, and each item's
// demand is concentrated in one community (pi_{i,n} profile). Sweeping
// the inter/intra ratio from mixed to segregated shows:
//   * rate-blind OPT (homogeneous approximation) degrades,
//   * the Lemma-1 greedy with pair rates helps,
//   * adding the popularity profile helps again (replicas move into the
//     demanding community),
//   * QCR tracks demand implicitly, with no knowledge of either.
#include <iostream>

#include "common.hpp"
#include "impatience/utility/families.hpp"

using namespace impatience;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto nodes = static_cast<trace::NodeId>(flags.get_int("nodes", 30));
  const auto items = static_cast<core::ItemId>(flags.get_int("items", 30));
  const int communities = flags.get_int("communities", 3);
  const trace::Slot slots = flags.get_long("slots", 4000);
  const int rho = flags.get_int("rho", 3);
  const int trials = flags.get_int("trials", 3);
  const double intra = flags.get_double("intra", 0.12);

  bench::banner("extension-communities",
                "clustered contacts + clustered demand (Section 7)");

  util::Rng rng(90210);
  utility::StepUtility u(30.0);

  util::TablePrinter table({"inter/intra", "U(OPT-hom)", "U(OPT-rates)",
                            "U(OPT-rates+pi)", "U(QCR)",
                            "QCR vs best oracle %"});
  table.set_precision(4);

  for (double ratio : {1.0, 0.3, 0.1, 0.03, 0.01}) {
    trace::CommunityTraceParams params;
    params.num_nodes = nodes;
    params.duration = slots;
    params.num_communities = communities;
    params.intra_rate = intra;
    params.inter_rate = intra * ratio;
    util::Rng gen_rng = rng.split();
    auto contact_trace = generate_community_trace(params, gen_rng);
    auto scenario = core::make_scenario(
        std::move(contact_trace), core::Catalog::pareto(items, 1.0, 1.0),
        rho);

    // Item i's demand concentrated in community (i mod communities).
    alloc::PopularityProfile profile;
    profile.pi.assign(items, std::vector<double>(nodes, 0.0));
    for (core::ItemId i = 0; i < items; ++i) {
      int members = 0;
      for (trace::NodeId n = 0; n < nodes; ++n) {
        if (trace::community_of(n, communities) ==
            static_cast<int>(i % communities)) {
          ++members;
        }
      }
      for (trace::NodeId n = 0; n < nodes; ++n) {
        if (trace::community_of(n, communities) ==
            static_cast<int>(i % communities)) {
          profile.pi[i][n] = 1.0 / members;
        }
      }
    }
    core::SimOptions options;
    options.popularity = profile;

    const auto rates = trace::estimate_rates(scenario.trace);
    std::vector<trace::NodeId> all(nodes);
    for (trace::NodeId n = 0; n < nodes; ++n) all[n] = n;

    double u_hom = 0.0, u_rates = 0.0, u_pi = 0.0, u_qcr = 0.0;
    for (int t = 0; t < trials; ++t) {
      // OPT-hom: Theorem-2 greedy, blind to rates and profile.
      {
        alloc::HomogeneousModel model{scenario.mu, nodes, nodes,
                                      alloc::SystemMode::kPureP2P};
        const auto counts = alloc::homogeneous_greedy(
            scenario.catalog.demands(), u, model,
            rho * static_cast<int>(nodes));
        util::Rng pr = rng.split();
        const auto placement =
            alloc::place_counts(counts, nodes, rho, pr);
        util::Rng rr = rng.split();
        u_hom += core::run_fixed(scenario, u, "OPT-hom", placement, options,
                                 rr)
                     .observed_utility();
      }
      // OPT-rates: Lemma-1 greedy, uniform profile.
      {
        const auto placement = alloc::lazy_greedy_placement(
            rates, scenario.catalog.demands(), u, all, all, items, rho);
        util::Rng rr = rng.split();
        u_rates += core::run_fixed(scenario, u, "OPT-rates", placement,
                                   options, rr)
                       .observed_utility();
      }
      // OPT-rates+pi: Lemma-1 greedy with the true demand profile.
      {
        const auto placement = alloc::lazy_greedy_placement(
            rates, scenario.catalog.demands(), u, all, all, items, rho,
            profile);
        util::Rng rr = rng.split();
        u_pi += core::run_fixed(scenario, u, "OPT-rates+pi", placement,
                                options, rr)
                    .observed_utility();
      }
      // QCR: local information only.
      {
        util::Rng rr = rng.split();
        u_qcr += core::run_qcr(scenario, u, core::QcrOptions{}, options, rr)
                     .observed_utility();
      }
    }
    u_hom /= trials;
    u_rates /= trials;
    u_pi /= trials;
    u_qcr /= trials;
    const double best = std::max({u_hom, u_rates, u_pi});
    table.row(ratio, u_hom, u_rates, u_pi, u_qcr,
              core::normalized_loss_percent(u_qcr, best));
  }
  table.print(std::cout);
  std::cout << "expected shape: as communities segregate (ratio -> 0), "
               "profile-aware placement\npulls ahead of rate-aware, which "
               "pulls ahead of rate-blind; QCR follows the\ndemand without "
               "being told about either structure.\n";
  return 0;
}
