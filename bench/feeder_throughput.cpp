// Feeder throughput: end-to-end frames/sec of service::StreamFeeder
// against a minimal handshake-speaking Unix-socket sink, with the chaos
// shim off vs. engaged at a fixed low fault rate (the overhead of seeded
// resets/partial-writes/garbage plus the reconnect + re-handshake +
// re-seek cycle). Backoff base is zero so the numbers measure protocol
// work, not sleeps. Compiled into micro_benchmarks so
// scripts/bench_snapshot.sh snapshots the *_mean numbers per PR.
#include <benchmark/benchmark.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "impatience/service/feeder.hpp"
#include "impatience/service/protocol.hpp"

namespace {

using namespace impatience;

std::string bench_path(const char* stem) {
  const char* tmp = std::getenv("TMPDIR");
  return std::string(tmp ? tmp : "/tmp") + "/" + stem + "_" +
         std::to_string(::getpid());
}

/// Minimal stand-in for replicationd's ingest side: accepts one
/// connection at a time, counts complete countable lines (the seq
/// cursor), answers H frames with the S reply, and discards any torn
/// fragment at disconnect — exactly the framing the feeder relies on,
/// with none of the state-store apply cost.
class HandshakeSink {
 public:
  explicit HandshakeSink(std::string path) : path_(std::move(path)) {
    ::unlink(path_.c_str());
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path_.c_str(), sizeof(addr.sun_path) - 1);
    ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    ::listen(listen_fd_, 8);
    thread_ = std::thread([this] { serve(); });
  }

  ~HandshakeSink() {
    stop_.store(true, std::memory_order_relaxed);
    thread_.join();
    ::close(listen_fd_);
    ::unlink(path_.c_str());
  }

  const std::string& path() const { return path_; }
  void reset() { count_.store(0, std::memory_order_relaxed); }

 private:
  bool stopped() const { return stop_.load(std::memory_order_relaxed); }

  void serve() {
    while (!stopped()) {
      pollfd lp{listen_fd_, POLLIN, 0};
      if (::poll(&lp, 1, 20) <= 0) continue;
      const int conn = ::accept(listen_fd_, nullptr, nullptr);
      if (conn < 0) continue;
      std::string buffer;
      char buf[4096];
      while (!stopped()) {
        pollfd cp{conn, POLLIN, 0};
        if (::poll(&cp, 1, 20) <= 0) continue;
        const ssize_t n = ::recv(conn, buf, sizeof(buf), 0);
        if (n <= 0) break;
        buffer.append(buf, static_cast<std::size_t>(n));
        std::size_t pos = 0;
        for (std::size_t nl; (nl = buffer.find('\n', pos)) !=
                             std::string::npos;
             pos = nl + 1) {
          const std::string line = buffer.substr(pos, nl - pos);
          if (service::classify_line(line) == service::LineClass::hello) {
            const std::string reply =
                service::format_seq_reply(
                    count_.load(std::memory_order_relaxed)) +
                "\n";
            ::send(conn, reply.data(), reply.size(), MSG_NOSIGNAL);
          } else {
            count_.fetch_add(1, std::memory_order_relaxed);
          }
        }
        buffer.erase(0, pos);
      }
      ::close(conn);  // torn fragment in `buffer` is dropped, as the
                      // daemon does after the next handshake
    }
  }

  std::string path_;
  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> count_{0};
  std::thread thread_;
};

/// arg 0: chaos off; arg 1: chaos engaged at a fixed low seeded rate.
void BM_FeederThroughput(benchmark::State& state) {
  const bool chaos = state.range(0) != 0;

  const std::string input = bench_path("feeder_bench_stream");
  service::StreamConfig stream;
  stream.events = 2000;
  stream.num_nodes = 32;
  stream.num_items = 24;
  stream.quit = false;
  {
    std::ofstream out(input);
    service::write_stream(out, service::generate_stream(stream, 23));
  }

  HandshakeSink sink(bench_path("feeder_bench_sock"));

  std::uint64_t frames = 0;
  for (auto _ : state) {
    state.PauseTiming();
    sink.reset();
    state.ResumeTiming();

    service::FeederConfig config;
    config.socket_path = sink.path();
    config.input_path = input;
    config.seed = 21;
    config.backoff = {0.0, 0.0};  // no sleeps: measure protocol work
    config.reply_timeout_s = 5.0;
    if (chaos) {
      config.chaos.p_reset = 0.002;
      config.chaos.p_partial = 0.002;
      config.chaos.p_garbage = 0.001;
      config.chaos.seed = 77;
    }
    service::StreamFeeder feeder(config);
    const service::FeederReport report = feeder.run();
    if (!report.complete) {
      state.SkipWithError("feeder did not complete");
      break;
    }
    frames = report.frames_total;
    benchmark::DoNotOptimize(report.frames_sent);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(frames));
  std::remove(input.c_str());
}
BENCHMARK(BM_FeederThroughput)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
