// Extension: the dedicated-node case (C and S disjoint — throwboxes,
// kiosks, vehicle fleets). This is the setting where the paper allows the
// unbounded-at-zero utilities (inverse power 1 < alpha < 2, neg-log),
// whose results live in the technical report [21]. We reproduce the
// comparison for step, inverse-power and neg-log utilities.
#include <iostream>

#include "common.hpp"
#include "impatience/utility/families.hpp"

using namespace impatience;

namespace {

struct DedicatedSetting {
  trace::ContactTrace trace;
  core::Catalog catalog;
  core::Population population;
  trace::NodeId servers;
  trace::NodeId clients;
  int rho;
  double mu;
};

double run_fixed_dedicated(const DedicatedSetting& s,
                           const utility::DelayUtility& u,
                           const alloc::ItemCounts& counts, util::Rng& rng) {
  core::SimOptions options;
  options.cache_capacity = s.rho;
  options.sticky_replicas = false;
  options.initial_placement =
      alloc::place_counts(alloc::round_counts(counts,
                                              static_cast<int>(s.servers)),
                          s.servers, s.rho, rng);
  core::StaticPolicy policy;
  return core::simulate(s.trace, s.catalog, u, policy, s.population, options,
                        rng)
      .observed_utility();
}

double run_qcr_dedicated(const DedicatedSetting& s,
                         const utility::DelayUtility& u, util::Rng& rng) {
  // Tuned, normalized and capped reaction as in core::run_qcr, but for
  // the dedicated population.
  const double servers = static_cast<double>(s.servers);
  const double x_uniform = std::max(
      1.0, s.rho * servers / static_cast<double>(s.catalog.num_items()));
  const double psi_uniform =
      utility::psi(u, s.mu, servers, servers / x_uniform);
  const double scale = psi_uniform > 0.0 ? 0.25 / psi_uniform : 1.0;
  utility::ReactionFunction reaction(u, s.mu, servers, scale);
  const double burst_cap = s.rho;
  core::QcrPolicy policy(
      "QCR",
      [reaction, burst_cap, servers](double y) {
        return std::min(reaction(std::min(y, servers)), burst_cap);
      },
      core::QcrPolicy::MandateRouting::kOn,
      static_cast<long>(s.rho) * s.servers);
  core::SimOptions options;
  options.cache_capacity = s.rho;
  options.sticky_replicas = true;
  return core::simulate(s.trace, s.catalog, u, policy, s.population, options,
                        rng)
      .observed_utility();
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto servers = static_cast<trace::NodeId>(flags.get_int("servers", 25));
  const auto clients = static_cast<trace::NodeId>(flags.get_int("clients", 25));
  const auto items = static_cast<core::ItemId>(flags.get_int("items", 25));
  const int rho = flags.get_int("rho", 5);
  const double mu = flags.get_double("mu", 0.05);
  const trace::Slot slots = flags.get_long("slots", 4000);
  const int trials = flags.get_int("trials", 3);

  bench::banner("extension-dedicated",
                "dedicated servers (kiosks/throwboxes), incl. unbounded-at-"
                "zero utilities");

  util::Rng rng(1799);
  const auto total = static_cast<trace::NodeId>(servers + clients);
  DedicatedSetting s{
      trace::generate_poisson({total, slots, mu}, rng),
      core::Catalog::pareto(items, 1.0, 1.0),
      core::Population::dedicated(servers, clients),
      servers,
      clients,
      rho,
      mu};

  struct Case {
    const char* label;
    std::unique_ptr<utility::DelayUtility> u;
  };
  std::vector<Case> cases;
  cases.push_back({"step tau=10", utility::make_utility("step:tau=10")});
  cases.push_back(
      {"inv power a=1.5", utility::make_utility("power:alpha=1.5")});
  cases.push_back({"neg log", utility::make_utility("neglog")});
  cases.push_back({"neg power a=0", utility::make_utility("power:alpha=0")});

  util::TablePrinter table({"utility", "U(OPT)", "QCR loss%", "SQRT loss%",
                            "PROP loss%", "UNI loss%", "DOM loss%"});
  table.set_precision(4);
  const double capacity_total = static_cast<double>(rho) * servers;
  for (const auto& c : cases) {
    alloc::HomogeneousModel model{mu, servers, clients,
                                  alloc::SystemMode::kDedicated};
    const auto& demand = s.catalog.demands();
    const auto opt = alloc::homogeneous_greedy(demand, *c.u, model,
                                               rho * static_cast<int>(servers));
    const double sv = static_cast<double>(servers);
    struct Alt {
      const char* name;
      alloc::ItemCounts counts;
    };
    std::vector<Alt> alts;
    alts.push_back({"SQRT",
                    alloc::sqrt_allocation(demand, capacity_total, sv)});
    alts.push_back({"PROP",
                    alloc::prop_allocation(demand, capacity_total, sv)});
    alts.push_back({"UNI",
                    alloc::uniform_allocation(items, capacity_total, sv)});
    alts.push_back({"DOM", alloc::dom_allocation(demand, rho, sv)});

    double u_opt = 0.0, u_qcr = 0.0;
    std::map<std::string, double> u_alt;
    for (int t = 0; t < trials; ++t) {
      util::Rng r = rng.split();
      u_opt += run_fixed_dedicated(s, *c.u, opt, r);
      util::Rng rq = rng.split();
      u_qcr += run_qcr_dedicated(s, *c.u, rq);
      for (const auto& alt : alts) {
        util::Rng ra = rng.split();
        u_alt[alt.name] += run_fixed_dedicated(s, *c.u, alt.counts, ra);
      }
    }
    u_opt /= trials;
    u_qcr /= trials;
    table.row(c.label, u_opt,
              core::normalized_loss_percent(u_qcr, u_opt),
              core::normalized_loss_percent(u_alt["SQRT"] / trials, u_opt),
              core::normalized_loss_percent(u_alt["PROP"] / trials, u_opt),
              core::normalized_loss_percent(u_alt["UNI"] / trials, u_opt),
              core::normalized_loss_percent(u_alt["DOM"] / trials, u_opt));
  }
  table.print(std::cout);
  std::cout << "note: inverse-power and neg-log utilities require the "
               "dedicated case (h(0+) = inf);\nclients never self-serve, "
               "so the expected-gain formulas of Table 1 apply directly.\n";
  return 0;
}
