// Shared plumbing for the figure-reproduction harness: run the paper's
// competitor set plus QCR on a scenario, aggregate trials, and print the
// normalized-loss rows the evaluation section reports.
#pragma once

#include <cstdint>
#include <functional>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "impatience/core/experiment.hpp"
#include "impatience/engine/artifacts.hpp"
#include "impatience/engine/runner.hpp"
#include "impatience/engine/seeding.hpp"
#include "impatience/engine/thread_pool.hpp"
#include "impatience/fault/fault.hpp"
#include "impatience/stats/trials.hpp"
#include "impatience/util/csv.hpp"
#include "impatience/util/flags.hpp"
#include "impatience/util/table.hpp"
#include "impatience/utility/factory.hpp"

namespace impatience::bench {

/// Algorithms in the paper's plotting order.
inline const std::vector<std::string>& algorithm_order() {
  static const std::vector<std::string> order{"QCR", "SQRT", "PROP", "UNI",
                                              "DOM"};
  return order;
}

struct ComparisonPoint {
  double x = 0.0;               ///< swept parameter value
  double opt_utility = 0.0;     ///< mean observed utility of OPT
  /// algorithm -> mean observed utility across trials
  std::map<std::string, double> utility;
  /// algorithm -> normalized loss vs OPT in percent (the figures' y-axis)
  std::map<std::string, double> loss_percent;
};

struct ComparisonConfig {
  int trials = 5;
  core::OptMode opt_mode = core::OptMode::kHomogeneous;
  bool include_qcr = true;
  core::QcrOptions qcr{};
  /// Per-trial simulator options. When sim.faults is engaged, each job
  /// gets its own fault stream seed derived from the root seed and the
  /// job's (policy, trial) — thread-count invariant like the sim seeds.
  core::SimOptions sim{};
  int threads = 0;       ///< engine workers; <1 = hardware concurrency
  bool progress = false; ///< runner progress/ETA on stderr
  double job_deadline_seconds = 0.0;  ///< per-job watchdog; <= 0 = off
  int max_attempts = 1;               ///< attempts before quarantine
  /// Jobs a prior manifest completed are skipped (engine resume).
  const engine::ResumeSet* resume = nullptr;
  std::string label = "comparison";  ///< scenario label in jobs/manifest
};

/// Runs OPT + UNI/SQRT/PROP/DOM + QCR on the scenario, `trials` times
/// each, through the parallel experiment engine, and reports mean
/// observed utilities and normalized losses. Every (algorithm, trial)
/// simulation draws from its own child stream of `root_seed`
/// (engine::child_seed), so results do not depend on thread count,
/// scheduling, or which other competitors run. When `accumulate` is
/// given, the point's job records and samples are merged into it (for a
/// sweep-wide manifest).
ComparisonPoint run_comparison(const core::Scenario& scenario,
                               const utility::DelayUtility& u, double x,
                               const ComparisonConfig& config,
                               std::uint64_t root_seed,
                               engine::RunReport* accumulate = nullptr);

/// Prints a figure table: one row per swept value, one column per
/// algorithm (normalized loss vs OPT in percent), plus the OPT utility.
void print_loss_table(const std::string& title,
                      const std::string& param_name,
                      const std::vector<ComparisonPoint>& points,
                      std::ostream& out = std::cout);

/// Writes the same data as CSV when --csv-dir is given.
void maybe_write_csv(const util::Flags& flags, const std::string& filename,
                     const std::string& param_name,
                     const std::vector<ComparisonPoint>& points);

/// Writes the engine's JSON run manifest when --manifest-dir is given.
/// `config` is serialized verbatim as the manifest's config block.
void maybe_write_manifest(
    const util::Flags& flags, const std::string& filename,
    const engine::RunReport& report,
    std::vector<std::pair<std::string, std::string>> config = {});

/// Reads the standard engine flags (--threads, --progress, --job-deadline
/// duration ("90", "250ms", "5m"), --max-attempts, --kernel slot|event,
/// --intra-threads) into a ComparisonConfig
/// and announces the engine setup on stderr. `--kernel event` selects the
/// event-driven simulation kernel for every job, fault-active ones
/// included (crashes ride the jump loop via geometric-skip draws); the
/// default `slot` keeps harness stdout byte-identical to previous
/// releases. `--intra-threads` (0 = off, the default; -1 = auto; N = N
/// threads) turns on meeting-level parallelism *inside* each trial
/// (docs/engine.md "Thread budget precedence"): auto is resolved here
/// against the Runner's trial fan-out via engine::resolve_intra_threads,
/// so a Runner already using every core resolves to 1 rather than
/// oversubscribing, and the simulator receives a concrete count. Results
/// are bit-identical for every setting.
void apply_engine_flags(const util::Flags& flags, ComparisonConfig& config,
                        std::uint64_t root_seed);

/// Reads --resume <manifest.json>: the completed jobs of a prior run,
/// to be skipped by the engine (their recorded values are replayed).
/// Returns std::nullopt when the flag is absent. Point
/// ComparisonConfig::resume at the returned object; its lifetime must
/// span every run_comparison call.
std::optional<engine::ResumeSet> load_resume_flag(const util::Flags& flags);

/// Reads the fault-injection flags (--fault-drop, --fault-truncate,
/// --fault-duplicate, --fault-reorder, --fault-crash, --fault-downtime,
/// --fault-persist, --fault-seed) into a FaultConfig. Returns true when
/// any fault is enabled.
bool apply_fault_flags(const util::Flags& flags, fault::FaultConfig& faults);

/// Standard banner so harness output is self-describing.
void banner(const std::string& id, const std::string& what,
            std::ostream& out = std::cout);

// ------------------------------------------------------------------ impl

inline ComparisonPoint run_comparison(const core::Scenario& scenario,
                                      const utility::DelayUtility& u,
                                      double x,
                                      const ComparisonConfig& config,
                                      std::uint64_t root_seed,
                                      engine::RunReport* accumulate) {
  // Placements first (serial, cheap): one child stream per trial so the
  // competitor set is identical for every thread count.
  std::vector<std::vector<core::NamedPlacement>> placements;
  placements.reserve(static_cast<std::size_t>(config.trials));
  for (int trial = 0; trial < config.trials; ++trial) {
    util::Rng placement_rng(engine::child_seed(
        root_seed, "placement", static_cast<std::uint64_t>(trial)));
    placements.push_back(
        core::build_competitors(scenario, u, config.opt_mode, placement_rng));
  }

  // One job per (algorithm, trial), each with its own child stream keyed
  // by the algorithm name — adding or removing a competitor leaves the
  // others' streams untouched.
  // The fault stream seed is keyed like the sim seed but on a disjoint
  // tag, so engaging faults never perturbs the simulation streams.
  auto fault_seed_for = [&](const std::string& policy, int trial) {
    return engine::child_seed(root_seed, "fault:" + policy,
                              static_cast<std::uint64_t>(trial));
  };

  std::vector<engine::JobSpec> jobs;
  for (int trial = 0; trial < config.trials; ++trial) {
    for (const auto& competitor : placements[static_cast<std::size_t>(trial)]) {
      engine::JobSpec job;
      job.scenario = config.label;
      job.policy = competitor.name;
      job.trial = trial;
      job.x = x;
      job.seed = engine::child_seed(root_seed, competitor.name,
                                    static_cast<std::uint64_t>(trial));
      const std::uint64_t fault_seed = fault_seed_for(competitor.name, trial);
      job.run_cancellable = [&scenario, &u, &config, &competitor, fault_seed](
                                util::Rng& rng,
                                const util::CancellationToken& cancel) {
        core::SimOptions sim = config.sim;
        if (sim.faults.engaged()) sim.faults.seed = fault_seed;
        sim.cancel = &cancel;
        return core::run_fixed(scenario, u, competitor.name,
                               competitor.placement, sim, rng)
            .observed_utility();
      };
      jobs.push_back(std::move(job));
    }
    if (config.include_qcr) {
      engine::JobSpec job;
      job.scenario = config.label;
      job.policy = config.qcr.mandate_routing ? "QCR" : "QCR-noMR";
      job.trial = trial;
      job.x = x;
      job.seed = engine::child_seed(root_seed, job.policy,
                                    static_cast<std::uint64_t>(trial));
      const std::uint64_t fault_seed = fault_seed_for(job.policy, trial);
      job.run_cancellable = [&scenario, &u, &config, fault_seed](
                                util::Rng& rng,
                                const util::CancellationToken& cancel) {
        core::SimOptions sim = config.sim;
        if (sim.faults.engaged()) sim.faults.seed = fault_seed;
        sim.cancel = &cancel;
        return core::run_qcr(scenario, u, config.qcr, sim, rng)
            .observed_utility();
      };
      jobs.push_back(std::move(job));
    }
  }

  engine::RunnerOptions runner_options;
  runner_options.threads = config.threads;
  runner_options.progress = config.progress;
  runner_options.job_deadline_seconds = config.job_deadline_seconds;
  runner_options.max_attempts = config.max_attempts;
  engine::Runner runner(runner_options);
  engine::RunReport report =
      runner.run(std::move(jobs), root_seed, config.resume);

  ComparisonPoint point;
  point.x = x;
  const auto series = report.aggregate.series_names();
  bool have_opt = false;
  for (const auto& name : series) {
    if (name == "OPT") {
      point.opt_utility = report.aggregate.band(name, x).mean;
      have_opt = true;
    }
  }
  if (!have_opt) {
    throw std::runtime_error("run_comparison: every OPT trial failed");
  }
  for (const auto& name : series) {
    if (name == "OPT") continue;
    const double mean = report.aggregate.band(name, x).mean;
    point.utility[name] = mean;
    point.loss_percent[name] =
        core::normalized_loss_percent(mean, point.opt_utility);
  }
  if (accumulate) accumulate->merge(std::move(report));
  return point;
}

inline void print_loss_table(const std::string& title,
                             const std::string& param_name,
                             const std::vector<ComparisonPoint>& points,
                             std::ostream& out) {
  out << title << '\n';
  std::vector<std::string> header{param_name, "U(OPT)"};
  std::vector<std::string> algorithms;
  for (const auto& name : algorithm_order()) {
    if (!points.empty() && points.front().loss_percent.count(name)) {
      algorithms.push_back(name);
      header.push_back(name + " loss%");
    }
  }
  util::TablePrinter table(header);
  table.set_precision(4);
  for (const auto& p : points) {
    std::vector<std::string> cells;
    {
      std::ostringstream os;
      os.precision(5);
      os << p.x;
      cells.push_back(os.str());
    }
    {
      std::ostringstream os;
      os.precision(5);
      os << p.opt_utility;
      cells.push_back(os.str());
    }
    for (const auto& name : algorithms) {
      std::ostringstream os;
      os.precision(4);
      os << p.loss_percent.at(name);
      cells.push_back(os.str());
    }
    table.add_row(cells);
  }
  table.print(out);
}

inline void maybe_write_csv(const util::Flags& flags,
                            const std::string& filename,
                            const std::string& param_name,
                            const std::vector<ComparisonPoint>& points) {
  if (!flags.has("csv-dir")) return;
  const std::string path =
      flags.get_string("csv-dir", ".") + "/" + filename;
  util::CsvWriter csv(path);
  std::vector<std::string> header{param_name, "opt_utility"};
  for (const auto& name : algorithm_order()) header.push_back(name);
  csv.header(header);
  for (const auto& p : points) {
    std::vector<std::string> cells;
    cells.push_back(std::to_string(p.x));
    cells.push_back(std::to_string(p.opt_utility));
    for (const auto& name : algorithm_order()) {
      const auto it = p.loss_percent.find(name);
      cells.push_back(it == p.loss_percent.end() ? ""
                                                 : std::to_string(it->second));
    }
    csv.row_strings(cells);
  }
  std::cout << "[csv] wrote " << path << '\n';
}

inline void maybe_write_manifest(
    const util::Flags& flags, const std::string& filename,
    const engine::RunReport& report,
    std::vector<std::pair<std::string, std::string>> config) {
  if (!flags.has("manifest-dir")) return;
  const std::string path =
      flags.get_string("manifest-dir", ".") + "/" + filename;
  engine::ManifestInfo info;
  info.generator = flags.program();
  info.config = std::move(config);
  // The manifest is auxiliary: a write failure must not abort and take
  // the (buffered, already-computed) result tables down with it.
  try {
    engine::write_manifest_file(path, report, info);
    std::cout << "[manifest] wrote " << path << '\n';
  } catch (const std::exception& e) {
    std::cerr << "[manifest] WARNING: " << e.what() << '\n';
  }
}

inline void apply_engine_flags(const util::Flags& flags,
                               ComparisonConfig& config,
                               std::uint64_t root_seed) {
  config.threads = flags.get_int("threads", 0);
  config.progress = flags.get_bool("progress", false);
  // Duration-valued: "--job-deadline 90", "--job-deadline 5m", "250ms".
  config.job_deadline_seconds = flags.get_duration("job-deadline", 0.0);
  config.max_attempts = flags.get_int("max-attempts", 1);
  const std::string kernel = flags.get_string("kernel", "slot");
  if (kernel == "event") {
    config.sim.kernel = core::SimKernel::event_driven;
  } else if (kernel == "slot") {
    config.sim.kernel = core::SimKernel::slot_stepped;
  } else {
    throw std::invalid_argument("--kernel must be 'slot' or 'event', got '" +
                                kernel + "'");
  }
  // Intra-run meeting parallelism: auto (-1) must account for the cores
  // the Runner's trial fan-out already claims, so it is resolved here —
  // the one place that knows both knobs — and the simulator gets a
  // concrete thread count.
  const unsigned outer_threads =
      engine::ThreadPool::resolve_threads(config.threads);
  const int intra_requested = flags.get_int("intra-threads", 0);
  const unsigned intra_resolved =
      engine::resolve_intra_threads(intra_requested, outer_threads);
  config.sim.meeting_parallelism = static_cast<int>(intra_resolved);
  // stderr, so tables on stdout stay byte-identical across thread counts.
  std::cerr << "[engine] threads=" << outer_threads
            << " intra-threads=" << intra_resolved
            << " root-seed=" << root_seed
            << " kernel=" << core::kernel_name(config.sim.kernel);
  if (config.job_deadline_seconds > 0.0) {
    std::cerr << " job-deadline=" << config.job_deadline_seconds << 's';
  }
  if (config.max_attempts > 1) {
    std::cerr << " max-attempts=" << config.max_attempts;
  }
  std::cerr << '\n';
}

inline std::optional<engine::ResumeSet> load_resume_flag(
    const util::Flags& flags) {
  if (!flags.has("resume")) return std::nullopt;
  const std::string path = flags.get_string("resume", "");
  auto set = engine::load_resume_set(path);
  std::cerr << "[engine] resume=" << path << " (" << set.size()
            << " completed jobs skipped)\n";
  return set;
}

inline bool apply_fault_flags(const util::Flags& flags,
                              fault::FaultConfig& faults) {
  faults.p_drop = flags.get_double("fault-drop", faults.p_drop);
  faults.p_truncate = flags.get_double("fault-truncate", faults.p_truncate);
  faults.p_duplicate = flags.get_double("fault-duplicate", faults.p_duplicate);
  faults.p_reorder = flags.get_double("fault-reorder", faults.p_reorder);
  faults.p_crash = flags.get_double("fault-crash", faults.p_crash);
  faults.mean_downtime =
      flags.get_double("fault-downtime", faults.mean_downtime);
  faults.p_persist_cache =
      flags.get_double("fault-persist", faults.p_persist_cache);
  faults.seed = static_cast<std::uint64_t>(
      flags.get_long("fault-seed", static_cast<long>(faults.seed)));
  return faults.any();
}

inline void banner(const std::string& id, const std::string& what,
                   std::ostream& out) {
  out << "\n=== " << id << ": " << what << " ===\n";
}

}  // namespace impatience::bench
