// Shared plumbing for the figure-reproduction harness: run the paper's
// competitor set plus QCR on a scenario, aggregate trials, and print the
// normalized-loss rows the evaluation section reports.
#pragma once

#include <functional>
#include <iostream>
#include <map>
#include <sstream>
#include <memory>
#include <string>
#include <vector>

#include "impatience/core/experiment.hpp"
#include "impatience/stats/trials.hpp"
#include "impatience/util/csv.hpp"
#include "impatience/util/flags.hpp"
#include "impatience/util/table.hpp"
#include "impatience/utility/factory.hpp"

namespace impatience::bench {

/// Algorithms in the paper's plotting order.
inline const std::vector<std::string>& algorithm_order() {
  static const std::vector<std::string> order{"QCR", "SQRT", "PROP", "UNI",
                                              "DOM"};
  return order;
}

struct ComparisonPoint {
  double x = 0.0;               ///< swept parameter value
  double opt_utility = 0.0;     ///< mean observed utility of OPT
  /// algorithm -> mean observed utility across trials
  std::map<std::string, double> utility;
  /// algorithm -> normalized loss vs OPT in percent (the figures' y-axis)
  std::map<std::string, double> loss_percent;
};

struct ComparisonConfig {
  int trials = 5;
  core::OptMode opt_mode = core::OptMode::kHomogeneous;
  bool include_qcr = true;
  core::QcrOptions qcr{};
  core::SimOptions sim{};
};

/// Runs OPT + UNI/SQRT/PROP/DOM + QCR on the scenario, `trials` times
/// each, and reports mean observed utilities and normalized losses.
ComparisonPoint run_comparison(const core::Scenario& scenario,
                               const utility::DelayUtility& u, double x,
                               const ComparisonConfig& config,
                               util::Rng& rng);

/// Prints a figure table: one row per swept value, one column per
/// algorithm (normalized loss vs OPT in percent), plus the OPT utility.
void print_loss_table(const std::string& title,
                      const std::string& param_name,
                      const std::vector<ComparisonPoint>& points,
                      std::ostream& out = std::cout);

/// Writes the same data as CSV when --csv-dir is given.
void maybe_write_csv(const util::Flags& flags, const std::string& filename,
                     const std::string& param_name,
                     const std::vector<ComparisonPoint>& points);

/// Standard banner so harness output is self-describing.
void banner(const std::string& id, const std::string& what,
            std::ostream& out = std::cout);

// ------------------------------------------------------------------ impl

inline ComparisonPoint run_comparison(const core::Scenario& scenario,
                                      const utility::DelayUtility& u,
                                      double x,
                                      const ComparisonConfig& config,
                                      util::Rng& rng) {
  ComparisonPoint point;
  point.x = x;
  std::map<std::string, double> totals;
  for (int trial = 0; trial < config.trials; ++trial) {
    util::Rng placement_rng = rng.split();
    const auto competitors =
        core::build_competitors(scenario, u, config.opt_mode, placement_rng);
    for (const auto& [name, placement] : competitors) {
      util::Rng trial_rng = rng.split();
      totals[name] += core::run_fixed(scenario, u, name, placement,
                                      config.sim, trial_rng)
                          .observed_utility();
    }
    if (config.include_qcr) {
      util::Rng trial_rng = rng.split();
      auto result =
          core::run_qcr(scenario, u, config.qcr, config.sim, trial_rng);
      totals[result.policy] += result.observed_utility();
    }
  }
  for (auto& [name, total] : totals) {
    total /= config.trials;
  }
  point.opt_utility = totals.at("OPT");
  for (const auto& [name, mean] : totals) {
    if (name == "OPT") continue;
    point.utility[name] = mean;
    point.loss_percent[name] =
        core::normalized_loss_percent(mean, point.opt_utility);
  }
  return point;
}

inline void print_loss_table(const std::string& title,
                             const std::string& param_name,
                             const std::vector<ComparisonPoint>& points,
                             std::ostream& out) {
  out << title << '\n';
  std::vector<std::string> header{param_name, "U(OPT)"};
  std::vector<std::string> algorithms;
  for (const auto& name : algorithm_order()) {
    if (!points.empty() && points.front().loss_percent.count(name)) {
      algorithms.push_back(name);
      header.push_back(name + " loss%");
    }
  }
  util::TablePrinter table(header);
  table.set_precision(4);
  for (const auto& p : points) {
    std::vector<std::string> cells;
    {
      std::ostringstream os;
      os.precision(5);
      os << p.x;
      cells.push_back(os.str());
    }
    {
      std::ostringstream os;
      os.precision(5);
      os << p.opt_utility;
      cells.push_back(os.str());
    }
    for (const auto& name : algorithms) {
      std::ostringstream os;
      os.precision(4);
      os << p.loss_percent.at(name);
      cells.push_back(os.str());
    }
    table.add_row(cells);
  }
  table.print(out);
}

inline void maybe_write_csv(const util::Flags& flags,
                            const std::string& filename,
                            const std::string& param_name,
                            const std::vector<ComparisonPoint>& points) {
  if (!flags.has("csv-dir")) return;
  const std::string path =
      flags.get_string("csv-dir", ".") + "/" + filename;
  util::CsvWriter csv(path);
  std::vector<std::string> header{param_name, "opt_utility"};
  for (const auto& name : algorithm_order()) header.push_back(name);
  csv.header(header);
  for (const auto& p : points) {
    std::vector<std::string> cells;
    cells.push_back(std::to_string(p.x));
    cells.push_back(std::to_string(p.opt_utility));
    for (const auto& name : algorithm_order()) {
      const auto it = p.loss_percent.find(name);
      cells.push_back(it == p.loss_percent.end() ? ""
                                                 : std::to_string(it->second));
    }
    csv.row_strings(cells);
  }
  std::cout << "[csv] wrote " << path << '\n';
}

inline void banner(const std::string& id, const std::string& what,
                   std::ostream& out) {
  out << "\n=== " << id << ": " << what << " ===\n";
}

}  // namespace impatience::bench
