// replicationd service benchmarks: sustained event-apply throughput of
// the versioned state store, snapshot serialization cost, and /metrics
// scrape latency while a mutator thread is applying events (the daemon's
// steady-state contention pattern). Compiled into micro_benchmarks so
// scripts/bench_snapshot.sh snapshots the *_mean numbers per PR.
#include <benchmark/benchmark.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "impatience/service/daemon.hpp"
#include "impatience/service/http.hpp"
#include "impatience/service/metrics.hpp"
#include "impatience/service/protocol.hpp"
#include "impatience/service/state_store.hpp"

namespace {

using namespace impatience;

service::StoreConfig bench_config(std::uint32_t nodes) {
  service::StoreConfig config;
  config.num_nodes = nodes;
  config.num_items = nodes;
  config.cache_capacity = 5;
  return config;
}

std::vector<service::Event> bench_stream(std::uint32_t nodes,
                                         std::uint64_t events,
                                         std::uint64_t seed) {
  service::StreamConfig config;
  config.events = events;
  config.num_nodes = nodes;
  config.num_items = nodes;
  config.quit = false;
  return service::generate_stream(config, seed);
}

// Sustained ingest rate: how many protocol events per second one store
// absorbs, QCR reaction and mandate routing included. Fresh store per
// iteration so the cache/mandate population profile is steady.
void BM_ServiceThroughput(benchmark::State& state) {
  const auto nodes = static_cast<std::uint32_t>(state.range(0));
  const auto events = bench_stream(nodes, 4000, 17);
  std::uint64_t version = 0;
  for (auto _ : state) {
    service::StateStore store(bench_config(nodes), 11);
    for (const service::Event& event : events) {
      version = store.apply(event);
    }
    benchmark::DoNotOptimize(version);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(events.size()));
}
BENCHMARK(BM_ServiceThroughput)->Arg(50)->Arg(200)
    ->Unit(benchmark::kMillisecond);

// Sharded parallel apply pipeline (docs/service.md "Sharded parallel
// apply"): same stream, pre-framed into IngestLines and pushed through
// apply_batch with 8 shards and Arg worker threads. Output is
// byte-identical to BM_ServiceThroughput by contract; the delta here is
// wall-clock only. On a single-core container the extra threads are
// pure scheduling overhead — read the numbers with docs/perf.md §7's
// caveat in mind.
void BM_ServiceThroughputSharded(benchmark::State& state) {
  const std::uint32_t nodes = 200;
  const auto events = bench_stream(nodes, 4000, 17);
  std::vector<service::IngestLine> lines;
  lines.reserve(events.size());
  for (const service::Event& event : events) {
    lines.push_back({false, event});
  }
  service::ApplyOptions options;
  options.shards = 8;
  options.threads = static_cast<unsigned>(state.range(0));
  options.window = 256;
  std::uint64_t version = 0;
  for (auto _ : state) {
    service::StateStore store(bench_config(nodes), 11, options);
    version = store.apply_batch(lines);
    benchmark::DoNotOptimize(version);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(lines.size()));
}
BENCHMARK(BM_ServiceThroughputSharded)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

// Copy-on-read image + line serialization: the cost the snapshot thread
// pays while the ingest path keeps running.
void BM_ServiceSnapshot(benchmark::State& state) {
  const auto nodes = static_cast<std::uint32_t>(state.range(0));
  service::StateStore store(bench_config(nodes), 12);
  for (const service::Event& event : bench_stream(nodes, 4000, 18)) {
    store.apply(event);
  }
  for (auto _ : state) {
    std::ostringstream out;
    service::write_image(out, store.image());
    benchmark::DoNotOptimize(out.str().size());
  }
}
BENCHMARK(BM_ServiceSnapshot)->Arg(50)->Arg(200);

// Incremental checkpoint cost: dirty-node delta extraction + delta
// serialization after a burst of events — what the chain writer pays per
// periodic checkpoint instead of a full image.
void BM_SnapshotDelta(benchmark::State& state) {
  const std::uint32_t nodes = 200;
  service::StateStore store(bench_config(nodes), 14);
  const auto events = bench_stream(nodes, 4000, 21);
  for (const service::Event& event : events) store.apply(event);
  store.checkpoint_image();
  std::size_t i = 0;
  for (auto _ : state) {
    state.PauseTiming();
    for (int k = 0; k < 64; ++k) {
      store.apply(events[i++ % events.size()]);
    }
    state.ResumeTiming();
    std::ostringstream out;
    service::write_delta(out, store.take_delta());
    benchmark::DoNotOptimize(out.str().size());
  }
}
BENCHMARK(BM_SnapshotDelta)->Unit(benchmark::kMicrosecond);

// End-to-end /metrics scrape over loopback HTTP while a mutator thread
// hammers the store — measures what a monitoring agent experiences
// against a busy daemon, lock contention included.
void BM_ServiceMetricsScrape(benchmark::State& state) {
  service::StateStore store(bench_config(50), 13);
  service::ServiceMetrics metrics;
  service::HttpServer server(
      [&](const std::string&) {
        return service::HttpResponse{
            200, "text/plain; version=0.0.4",
            service::render_metrics(store, metrics, 1.0, 0.0)};
      },
      0);

  std::atomic<bool> stop{false};
  std::thread mutator([&] {
    const auto events = bench_stream(50, 4000, 19);
    std::size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      metrics.record_apply_latency(
          static_cast<double>(store.apply(events[i % events.size()]) % 97));
      ++i;
    }
  });
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        service::http_get(server.port(), "/metrics").size());
  }
  stop.store(true);
  mutator.join();
  server.stop();
}
BENCHMARK(BM_ServiceMetricsScrape)->Unit(benchmark::kMicrosecond);

}  // namespace
