// Figure 5: conference scenario (Infocom'06-like trace), step utility.
//   (a) observed utility over time (hourly bins; tau configurable)
//   (b) loss vs OPT as a function of tau, actual (bursty) trace
//   (c) same sweep on the memoryless-synthesized equivalent trace
// The real Bluetooth trace is not redistributable; the generator
// reproduces its diurnal envelope, heterogeneous pair rates and bursty
// inter-contacts (see DESIGN.md). A real CRAWDAD file can be supplied
// with --trace <file> (4-column contact format).
#include <iostream>

#include "common.hpp"
#include "impatience/trace/parsers.hpp"
#include "impatience/trace/partition.hpp"
#include "impatience/utility/families.hpp"

using namespace impatience;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const int trials = flags.get_int("trials", 5);
  const int rho = flags.get_int("rho", 5);
  const double total_demand = flags.get_double("demand", 1.0);
  const double panel_a_tau = flags.get_double("panel-a-tau", 60.0);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_long("seed", 606));

  bench::banner("fig5", "Infocom-like conference trace, step utility");

  util::Rng rng(seed);
  const auto wanted_nodes =
      static_cast<trace::NodeId>(flags.get_int("nodes", 50));
  trace::ContactTrace contact_trace = [&]() {
    if (flags.has("trace")) {
      trace::CrawdadOptions opt;
      auto parsed =
          trace::parse_crawdad_file(flags.get_string("trace", ""), opt);
      // The paper keeps the 50 best-connected of the 73 participants "to
      // remove bias from poorly connected nodes" (Section 6.3).
      if (parsed.num_nodes() > wanted_nodes) {
        return trace::select_most_active_nodes(parsed, wanted_nodes);
      }
      return parsed;
    }
    trace::InfocomLikeParams params;
    params.num_nodes = wanted_nodes;
    params.days = flags.get_int("days", 3);
    util::Rng gen_rng = rng.split();
    return trace::generate_infocom_like(params, gen_rng);
  }();
  std::cout << "trace: " << contact_trace.num_nodes() << " nodes, "
            << contact_trace.duration() << " slots, "
            << contact_trace.size() << " contacts, inter-contact CV "
            << trace::inter_contact_cv(contact_trace) << '\n';
  // Slot concurrency profile: how much meeting-level parallelism
  // (--intra-threads, docs/perf.md §5) this trace exposes.
  const trace::SlotConflictStats conflict =
      contact_trace.slot_conflict_stats();
  std::cout << "slot concurrency: mean " << conflict.mean_slot_meetings
            << " / max " << conflict.max_slot_meetings
            << " meetings per active slot, max wave depth "
            << conflict.max_wave_depth << ", mean wave width "
            << conflict.mean_wave_width << '\n';

  const auto catalog = core::Catalog::pareto(
      static_cast<core::ItemId>(flags.get_int("items", 50)), 1.0,
      total_demand);

  util::Rng synth_rng = rng.split();
  auto synthetic = trace::memoryless_equivalent(contact_trace, synth_rng);

  auto scenario =
      core::make_scenario(std::move(contact_trace), catalog, rho);
  auto scenario_synth =
      core::make_scenario(std::move(synthetic), catalog, rho);

  bench::ComparisonConfig config;
  config.trials = trials;
  config.opt_mode = core::OptMode::kEstimated;
  bench::apply_engine_flags(flags, config, seed);
  engine::RunReport manifest;

  // Panel (a): utility over time for tau = panel_a_tau.
  {
    utility::StepUtility u(panel_a_tau);
    core::SimOptions options;
    options.metrics.bin_width = 60.0;  // hourly bins of 1-minute slots
    std::cout << "Figure 5(a): observed utility over time (tau="
              << panel_a_tau << ", hourly bins)\n";
    util::Rng placement_rng = rng.split();
    const auto competitors = core::build_competitors(
        scenario, u, core::OptMode::kEstimated, placement_rng);
    std::vector<std::pair<std::string, core::SimulationResult>> runs;
    for (const auto& [name, placement] : competitors) {
      util::Rng r = rng.split();
      runs.emplace_back(
          name, core::run_fixed(scenario, u, name, placement, options, r));
    }
    {
      util::Rng r = rng.split();
      runs.emplace_back(
          "QCR", core::run_qcr(scenario, u, core::QcrOptions{}, options, r));
    }
    std::vector<std::string> header{"hour"};
    for (const auto& [name, _] : runs) header.push_back(name);
    util::TablePrinter table(header);
    table.set_precision(4);
    const std::size_t rows = runs.front().second.observed_series.size();
    // Print every 3 hours to keep the table readable.
    for (std::size_t k = 0; k < rows; k += 3) {
      std::vector<std::string> cells;
      std::ostringstream os;
      os << runs.front().second.observed_series[k].time / 60.0;
      cells.push_back(os.str());
      for (const auto& [_, result] : runs) {
        std::ostringstream vo;
        vo.precision(4);
        vo << result.observed_series[k].value;
        cells.push_back(vo.str());
      }
      table.add_row(cells);
    }
    table.print(std::cout);
  }

  // Panels (b) and (c): loss vs tau, actual and synthesized traces.
  const std::vector<double> taus{1.0, 3.0, 10.0, 30.0, 100.0, 300.0,
                                 1000.0};
  for (int panel = 0; panel < 2; ++panel) {
    const auto& s = panel == 0 ? scenario : scenario_synth;
    config.label = panel == 0 ? "fig5-actual" : "fig5-synth";
    std::vector<bench::ComparisonPoint> points;
    std::uint64_t index = 0;
    for (double tau : taus) {
      utility::StepUtility u(tau);
      const std::uint64_t point_seed =
          engine::child_seed(seed, config.label, index++);
      points.push_back(
          bench::run_comparison(s, u, tau, config, point_seed, &manifest));
    }
    const std::string title =
        panel == 0
            ? "Figure 5(b): loss vs OPT (%) by tau, actual (bursty) trace"
            : "Figure 5(c): loss vs OPT (%) by tau, memoryless-synthesized";
    bench::print_loss_table(title, "tau", points);
    bench::maybe_write_csv(
        flags, panel == 0 ? "fig5_actual.csv" : "fig5_synth.csv", "tau",
        points);
  }

  manifest.root_seed = seed;
  bench::maybe_write_manifest(flags, "fig5_manifest.json", manifest,
                              {{"trials", std::to_string(trials)},
                               {"rho", std::to_string(rho)},
                               {"demand", std::to_string(total_demand)},
                               {"seed", std::to_string(seed)},
                               {"kernel",
                                core::kernel_name(config.sim.kernel)},
                               {"intra_threads",
                                std::to_string(config.sim.meeting_parallelism)},
                               {"mean_slot_meetings",
                                std::to_string(conflict.mean_slot_meetings)},
                               {"max_slot_meetings",
                                std::to_string(conflict.max_slot_meetings)},
                               {"max_distinct_nodes",
                                std::to_string(conflict.max_distinct_nodes)},
                               {"max_wave_depth",
                                std::to_string(conflict.max_wave_depth)},
                               {"mean_wave_width",
                                std::to_string(conflict.mean_wave_width)}});

  std::cout << "expected shape (paper): DOM and PROP gain strength vs the\n"
               "homogeneous case; SQRT no longer the clear winner; QCR stays "
               "within ~15% of OPT;\nfixed allocations can beat OPT "
               "occasionally on the bursty trace (OPT is memoryless-"
               "approximate).\n";
  return 0;
}
