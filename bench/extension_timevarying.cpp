// Extension: time-varying oracle placement. The paper computes OPT under
// the memoryless (time-averaged) approximation and observes that on real
// traces "some competitors actually... slightly outperform OPT on
// occasion" because contact statistics change over time. Here we make
// the point sharper on the diurnal Infocom-like trace: an oracle that
// re-estimates pair rates and re-places replicas per time window beats
// the static memoryless OPT, and QCR — with no oracle at all — closes
// part of the same gap by reacting to the live contact process.
//
// Windowed runs restart the request population at window boundaries (a
// mild approximation, noted in the output); all schemes are compared on
// total realized gain per slot.
#include <iostream>

#include "common.hpp"
#include "impatience/utility/families.hpp"

using namespace impatience;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto nodes = static_cast<trace::NodeId>(flags.get_int("nodes", 50));
  const auto items = static_cast<core::ItemId>(flags.get_int("items", 50));
  const int rho = flags.get_int("rho", 5);
  const int days = flags.get_int("days", 3);
  const int windows_per_day = flags.get_int("windows-per-day", 4);
  const double tau = flags.get_double("tau", 60.0);
  const int trials = flags.get_int("trials", 3);

  bench::banner("extension-timevarying",
                "windowed oracle vs static memoryless OPT vs QCR");

  util::Rng rng(8128);
  trace::InfocomLikeParams params;
  params.num_nodes = nodes;
  params.days = days;
  util::Rng gen_rng = rng.split();
  const auto full_trace = trace::generate_infocom_like(params, gen_rng);
  const auto catalog = core::Catalog::pareto(items, 1.0, 1.0);
  utility::StepUtility u(tau);

  const trace::Slot window =
      full_trace.duration() / (static_cast<trace::Slot>(days) *
                               windows_per_day);

  double u_static = 0.0, u_windowed = 0.0, u_qcr = 0.0;
  for (int t = 0; t < trials; ++t) {
    // Static memoryless OPT over the whole trace.
    {
      auto scenario = core::make_scenario(full_trace.slice(0,
                                                           full_trace.duration()),
                                          catalog, rho);
      util::Rng pr = rng.split();
      const auto set = core::build_competitors(
          scenario, u, core::OptMode::kEstimated, pr);
      util::Rng rr = rng.split();
      u_static += core::run_fixed(scenario, u, "OPT", set[0].placement,
                                  core::SimOptions{}, rr)
                      .observed_utility();
    }
    // Windowed oracle: re-estimate + re-place per window. Uses the
    // window's own contacts (a clairvoyant oracle, the strongest
    // reasonable baseline).
    {
      double gain = 0.0;
      for (trace::Slot start = 0; start + window <= full_trace.duration();
           start += window) {
        auto piece = full_trace.slice(start, start + window);
        if (piece.empty()) continue;
        auto scenario = core::make_scenario(std::move(piece), catalog, rho);
        util::Rng pr = rng.split();
        const auto set = core::build_competitors(
            scenario, u, core::OptMode::kEstimated, pr);
        util::Rng rr = rng.split();
        gain += core::run_fixed(scenario, u, "OPT-w", set[0].placement,
                                core::SimOptions{}, rr)
                    .total_gain;
      }
      u_windowed += gain / static_cast<double>(full_trace.duration());
    }
    // QCR over the whole trace, no oracle.
    {
      auto scenario = core::make_scenario(
          full_trace.slice(0, full_trace.duration()), catalog, rho);
      util::Rng rr = rng.split();
      u_qcr += core::run_qcr(scenario, u, core::QcrOptions{},
                             core::SimOptions{}, rr)
                   .observed_utility();
    }
  }
  u_static /= trials;
  u_windowed /= trials;
  u_qcr /= trials;

  util::TablePrinter table({"scheme", "utility", "vs static OPT %"});
  table.set_precision(4);
  table.row("OPT static (memoryless)", u_static, 0.0);
  table.row("OPT windowed (clairvoyant)", u_windowed,
            core::normalized_loss_percent(u_windowed, u_static));
  table.row("QCR (no oracle)", u_qcr,
            core::normalized_loss_percent(u_qcr, u_static));
  table.print(std::cout);
  std::cout << "note: windowed runs restart pending requests at window "
               "boundaries (slight\nunderestimate of the windowed oracle "
               "for tau comparable to the window).\n"
               "expected shape: the windowed oracle beats the static "
               "memoryless OPT on diurnal\ntraces — the headroom the "
               "paper's Section 6.3 observation points at; QCR (no\n"
               "oracle, shown for reference) lands near the static OPT.\n";
  return 0;
}
