// Figure 1: the delay-utility families used for advertising revenue
// (left), time-critical information (middle) and waiting cost (right).
// Prints h(t) for each curve on the paper's t in [0, 5] range.
#include <iostream>
#include <memory>
#include <vector>

#include "common.hpp"
#include "impatience/utility/families.hpp"

using namespace impatience;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const int samples = flags.get_int("samples", 26);
  const double t_max = flags.get_double("tmax", 5.0);

  struct Panel {
    const char* title;
    std::vector<std::pair<std::string, std::unique_ptr<utility::DelayUtility>>>
        curves;
  };
  std::vector<Panel> panels;
  {
    Panel p;
    p.title = "Figure 1(a): advertising revenue";
    p.curves.emplace_back("step tau=1", utility::make_utility("step:tau=1"));
    p.curves.emplace_back("exp nu=0.1", utility::make_utility("exp:nu=0.1"));
    p.curves.emplace_back("exp nu=1", utility::make_utility("exp:nu=1"));
    panels.push_back(std::move(p));
  }
  {
    Panel p;
    p.title = "Figure 1(b): time-critical information";
    p.curves.emplace_back("power a=2 (limit)",
                          utility::make_utility("power:alpha=1.99"));
    p.curves.emplace_back("power a=1.5",
                          utility::make_utility("power:alpha=1.5"));
    p.curves.emplace_back("neglog (a=1)", utility::make_utility("neglog"));
    panels.push_back(std::move(p));
  }
  {
    Panel p;
    p.title = "Figure 1(c): waiting cost";
    p.curves.emplace_back("power a=0.5",
                          utility::make_utility("power:alpha=0.5"));
    p.curves.emplace_back("power a=0",
                          utility::make_utility("power:alpha=0"));
    p.curves.emplace_back("power a=-1",
                          utility::make_utility("power:alpha=-1"));
    panels.push_back(std::move(p));
  }

  bench::banner("fig1", "delay-utility function shapes, h(t) on [0, 5]");
  for (const auto& panel : panels) {
    std::vector<std::string> header{"t"};
    for (const auto& [name, _] : panel.curves) header.push_back(name);
    util::TablePrinter table(header);
    table.set_precision(4);
    for (int k = 0; k < samples; ++k) {
      const double t =
          std::max(1e-3, t_max * static_cast<double>(k) / (samples - 1));
      std::vector<std::string> cells;
      {
        std::ostringstream os;
        os.precision(3);
        os << t;
        cells.push_back(os.str());
      }
      for (const auto& [_, u] : panel.curves) {
        std::ostringstream os;
        os.precision(4);
        os << u->value(t);
        cells.push_back(os.str());
      }
      table.add_row(cells);
    }
    std::cout << panel.title << '\n';
    table.print(std::cout);
  }

  // Sanity summary: all curves monotone non-increasing.
  bool monotone = true;
  for (const auto& panel : panels) {
    for (const auto& [name, u] : panel.curves) {
      double prev = u->value(1e-3);
      for (double t = 0.05; t <= t_max; t += 0.05) {
        const double v = u->value(t);
        if (v > prev + 1e-12) monotone = false;
        prev = v;
      }
    }
  }
  std::cout << "monotone non-increasing: " << (monotone ? "yes" : "NO")
            << '\n';
  return monotone ? 0 : 1;
}
