// Ablations on the design choices DESIGN.md calls out:
//   1. reaction scale  — the Property-2 free constant: equilibrium is
//      scale-invariant, but large scales thrash the cache (convergence
//      speed vs steady-state noise);
//   2. sticky replicas — without the immortal seed copy, items can be
//      absorbed out of the system entirely;
//   3. passive vs path vs QCR reaction — the replication-rule family:
//      constant psi ~ PROP, linear psi ~ SQRT, Table-1 psi ~ optimal.
//
// All arms run as engine jobs: one (policy, trial) simulation per job,
// each on its own child stream of --seed, parallel across --threads.
#include <iostream>
#include <numeric>

#include "common.hpp"
#include "impatience/utility/families.hpp"

using namespace impatience;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const trace::NodeId nodes =
      static_cast<trace::NodeId>(flags.get_int("nodes", 50));
  const trace::Slot slots = flags.get_long("slots", 5000);
  const double mu = flags.get_double("mu", 0.05);
  const int rho = flags.get_int("rho", 5);
  const int trials = flags.get_int("trials", 3);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_long("seed", 99));

  bench::banner("ablation", "QCR design choices (power alpha=0)");

  engine::Runner runner(
      {flags.get_int("threads", 0), flags.get_bool("progress", false)});
  std::cerr << "[engine] threads=" << runner.threads() << " root-seed="
            << seed << '\n';
  engine::RunReport manifest;

  util::Rng trace_rng(engine::child_seed(seed, "scenario"));
  auto trace = trace::generate_poisson({nodes, slots, mu}, trace_rng);
  auto scenario = core::make_scenario(
      std::move(trace),
      core::Catalog::pareto(static_cast<core::ItemId>(nodes), 1.0, 1.0),
      rho);
  utility::PowerUtility u(0.0);

  // Reference OPT utility: one job per trial.
  double u_opt = 0.0;
  {
    std::vector<alloc::Placement> opt_placements;
    opt_placements.reserve(static_cast<std::size_t>(trials));
    for (int t = 0; t < trials; ++t) {
      util::Rng pr(engine::child_seed(seed, "placement",
                                      static_cast<std::uint64_t>(t)));
      opt_placements.push_back(
          core::build_competitors(scenario, u, core::OptMode::kHomogeneous,
                                  pr)[0]
              .placement);
    }
    std::vector<engine::JobSpec> jobs;
    for (int t = 0; t < trials; ++t) {
      engine::JobSpec job;
      job.scenario = "ablation-opt";
      job.policy = "OPT";
      job.trial = t;
      job.seed =
          engine::child_seed(seed, "OPT", static_cast<std::uint64_t>(t));
      job.run = [&scenario, &u, &opt_placements, t](util::Rng& rng) {
        return core::run_fixed(scenario, u, "OPT",
                               opt_placements[static_cast<std::size_t>(t)],
                               core::SimOptions{}, rng)
            .observed_utility();
      };
      jobs.push_back(std::move(job));
    }
    auto report = runner.run(std::move(jobs), seed);
    u_opt = report.aggregate.band("OPT", 0.0).mean;
    manifest.merge(std::move(report));
  }

  // 1. Reaction-scale sweep.
  {
    std::cout << "Ablation 1: reaction scale (target replicas per "
                 "fulfilment at uniform allocation)\n";
    const std::vector<double> targets{0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 20.0};
    std::vector<engine::JobSpec> jobs;
    // Side channel for the non-scalar metric: each job writes only its
    // own slot, so the sweep stays deterministic and race-free.
    std::vector<long> written(targets.size() *
                                  static_cast<std::size_t>(trials),
                              0);
    std::size_t slot = 0;
    for (std::size_t ti = 0; ti < targets.size(); ++ti) {
      for (int t = 0; t < trials; ++t, ++slot) {
        engine::JobSpec job;
        job.scenario = "ablation-scale";
        job.policy = "QCR";
        job.trial = t;
        job.x = targets[ti];
        job.seed = engine::child_seed(seed, "scale", ti,
                                      static_cast<std::uint64_t>(t));
        job.run = [&scenario, &u, &written, slot,
                   target = targets[ti]](util::Rng& rng) {
          core::QcrOptions q;
          q.target_replicas_per_fulfillment = target;
          const auto res =
              core::run_qcr(scenario, u, q, core::SimOptions{}, rng);
          written[slot] = res.replicas_written;
          return res.observed_utility();
        };
        jobs.push_back(std::move(job));
      }
    }
    auto report = runner.run(std::move(jobs), seed);
    util::TablePrinter table(
        {"target", "observed U", "loss vs OPT %", "replicas written"});
    table.set_precision(4);
    slot = 0;
    for (double target : targets) {
      const double mean = report.aggregate.band("QCR", target).mean;
      long total_written = 0;
      for (int t = 0; t < trials; ++t, ++slot) total_written += written[slot];
      table.row(target, mean, core::normalized_loss_percent(mean, u_opt),
                total_written / trials);
    }
    table.print(std::cout);
    manifest.merge(std::move(report));
  }

  // 2. Sticky replicas on/off: count items absorbed to zero copies.
  {
    std::cout << "Ablation 2: sticky seed replicas\n";
    std::vector<engine::JobSpec> jobs;
    std::vector<double> lost(2 * static_cast<std::size_t>(trials), 0.0);
    std::size_t slot = 0;
    for (bool sticky : {true, false}) {
      for (int t = 0; t < trials; ++t, ++slot) {
        engine::JobSpec job;
        job.scenario = "ablation-sticky";
        job.policy = sticky ? "sticky-on" : "sticky-off";
        job.trial = t;
        job.seed = engine::child_seed(seed, job.policy,
                                      static_cast<std::uint64_t>(t));
        job.run = [&scenario, &u, &lost, slot, sticky, nodes,
                   rho](util::Rng& rng) {
          core::SimOptions options;
          options.sticky_replicas = sticky;
          options.cache_capacity = rho;
          // run_qcr forces sticky on; call simulate directly instead.
          utility::ReactionFunction reaction(
              u, scenario.mu, static_cast<double>(nodes), 0.1);
          core::QcrPolicy policy(
              "QCR", [reaction](double y) { return reaction(y); },
              core::QcrPolicy::MandateRouting::kOn);
          const auto res = core::simulate(scenario.trace, scenario.catalog,
                                          u, policy, options, rng);
          for (int c : res.final_counts) {
            if (c == 0) lost[slot] += 1.0;
          }
          return res.observed_utility();
        };
        jobs.push_back(std::move(job));
      }
    }
    auto report = runner.run(std::move(jobs), seed);
    util::TablePrinter table(
        {"sticky", "observed U", "loss vs OPT %", "items lost (end)"});
    table.set_precision(4);
    slot = 0;
    for (bool sticky : {true, false}) {
      const double mean =
          report.aggregate.band(sticky ? "sticky-on" : "sticky-off", 0.0)
              .mean;
      double mean_lost = 0.0;
      for (int t = 0; t < trials; ++t, ++slot) mean_lost += lost[slot];
      mean_lost /= trials;
      table.row(sticky ? "on" : "off", mean,
                core::normalized_loss_percent(mean, u_opt), mean_lost);
    }
    table.print(std::cout);
    manifest.merge(std::move(report));
  }

  // 3. Reaction-rule family.
  {
    std::cout << "Ablation 3: replication rule (reaction function family)\n";
    struct Rule {
      const char* name;
      std::function<std::unique_ptr<core::QcrPolicy>()> make;
    };
    std::vector<Rule> rules;
    rules.push_back({"PASSIVE (psi = const, -> PROP)", [] {
                       return core::make_passive_policy(0.5);
                     }});
    rules.push_back({"PATH (psi ~ y, -> SQRT)", [&] {
                       return core::make_path_replication_policy(
                           0.5 / (static_cast<double>(nodes) /
                                  static_cast<double>(rho)));
                     }});
    rules.push_back({"QCR (psi from Table 1)", [&] {
                       utility::ReactionFunction tuned(
                           u, scenario.mu, static_cast<double>(nodes), 0.1);
                       return std::make_unique<core::QcrPolicy>(
                           "QCR", [tuned](double y) { return tuned(y); },
                           core::QcrPolicy::MandateRouting::kOn);
                     }});
    std::vector<engine::JobSpec> jobs;
    for (std::size_t ri = 0; ri < rules.size(); ++ri) {
      for (int t = 0; t < trials; ++t) {
        engine::JobSpec job;
        job.scenario = "ablation-rule";
        job.policy = rules[ri].name;
        job.trial = t;
        job.seed = engine::child_seed(seed, "rule", ri,
                                      static_cast<std::uint64_t>(t));
        job.run = [&scenario, &u, &rules, ri, rho](util::Rng& rng) {
          auto policy = rules[ri].make();
          core::SimOptions options;
          options.cache_capacity = rho;
          return core::simulate(scenario.trace, scenario.catalog, u, *policy,
                                options, rng)
              .observed_utility();
        };
        jobs.push_back(std::move(job));
      }
    }
    auto report = runner.run(std::move(jobs), seed);
    util::TablePrinter table({"rule", "observed U", "loss vs OPT %"});
    table.set_precision(4);
    for (const auto& rule : rules) {
      const double mean = report.aggregate.band(rule.name, 0.0).mean;
      table.row(rule.name, mean,
                core::normalized_loss_percent(mean, u_opt));
    }
    table.print(std::cout);
    manifest.merge(std::move(report));
  }

  manifest.root_seed = seed;
  bench::maybe_write_manifest(
      flags, "ablation_manifest.json", manifest,
      {{"nodes", std::to_string(nodes)},
       {"slots", std::to_string(slots)},
       {"mu", std::to_string(mu)},
       {"rho", std::to_string(rho)},
       {"trials", std::to_string(trials)},
       {"seed", std::to_string(seed)}});
  std::cout << "U(OPT) reference: " << u_opt << '\n';
  return 0;
}
