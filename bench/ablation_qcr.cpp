// Ablations on the design choices DESIGN.md calls out:
//   1. reaction scale  — the Property-2 free constant: equilibrium is
//      scale-invariant, but large scales thrash the cache (convergence
//      speed vs steady-state noise);
//   2. sticky replicas — without the immortal seed copy, items can be
//      absorbed out of the system entirely;
//   3. passive vs path vs QCR reaction — the replication-rule family:
//      constant psi ~ PROP, linear psi ~ SQRT, Table-1 psi ~ optimal.
#include <iostream>
#include <numeric>

#include "common.hpp"
#include "impatience/utility/families.hpp"

using namespace impatience;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const trace::NodeId nodes =
      static_cast<trace::NodeId>(flags.get_int("nodes", 50));
  const trace::Slot slots = flags.get_long("slots", 5000);
  const double mu = flags.get_double("mu", 0.05);
  const int rho = flags.get_int("rho", 5);
  const int trials = flags.get_int("trials", 3);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_long("seed", 99));

  bench::banner("ablation", "QCR design choices (power alpha=0)");

  util::Rng rng(seed);
  auto trace = trace::generate_poisson({nodes, slots, mu}, rng);
  auto scenario = core::make_scenario(
      std::move(trace),
      core::Catalog::pareto(static_cast<core::ItemId>(nodes), 1.0, 1.0),
      rho);
  utility::PowerUtility u(0.0);

  // Reference OPT utility.
  double u_opt = 0.0;
  for (int t = 0; t < trials; ++t) {
    util::Rng pr = rng.split();
    const auto set =
        core::build_competitors(scenario, u, core::OptMode::kHomogeneous, pr);
    util::Rng rr = rng.split();
    u_opt += core::run_fixed(scenario, u, "OPT", set[0].placement,
                             core::SimOptions{}, rr)
                 .observed_utility();
  }
  u_opt /= trials;

  // 1. Reaction-scale sweep.
  {
    std::cout << "Ablation 1: reaction scale (target replicas per "
                 "fulfilment at uniform allocation)\n";
    util::TablePrinter table(
        {"target", "observed U", "loss vs OPT %", "replicas written"});
    table.set_precision(4);
    for (double target : {0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 20.0}) {
      double total = 0.0;
      long written = 0;
      for (int t = 0; t < trials; ++t) {
        core::QcrOptions q;
        q.target_replicas_per_fulfillment = target;
        util::Rng r = rng.split();
        const auto res = core::run_qcr(scenario, u, q, core::SimOptions{}, r);
        total += res.observed_utility();
        written += res.replicas_written;
      }
      total /= trials;
      table.row(target, total, core::normalized_loss_percent(total, u_opt),
                written / trials);
    }
    table.print(std::cout);
  }

  // 2. Sticky replicas on/off: count items absorbed to zero copies.
  {
    std::cout << "Ablation 2: sticky seed replicas\n";
    util::TablePrinter table(
        {"sticky", "observed U", "loss vs OPT %", "items lost (end)"});
    table.set_precision(4);
    for (bool sticky : {true, false}) {
      double total = 0.0;
      double lost = 0.0;
      for (int t = 0; t < trials; ++t) {
        core::SimOptions options;
        options.sticky_replicas = sticky;
        util::Rng r = rng.split();
        // run_qcr forces sticky on; call simulate directly for the off arm.
        utility::ReactionFunction reaction(u, scenario.mu,
                                           static_cast<double>(nodes), 0.1);
        core::QcrPolicy policy("QCR",
                               [reaction](double y) { return reaction(y); },
                               core::QcrPolicy::MandateRouting::kOn);
        options.cache_capacity = rho;
        const auto res =
            core::simulate(scenario.trace, scenario.catalog, u, policy,
                           options, r);
        total += res.observed_utility();
        for (int c : res.final_counts) {
          if (c == 0) lost += 1.0;
        }
      }
      total /= trials;
      lost /= trials;
      table.row(sticky ? "on" : "off", total,
                core::normalized_loss_percent(total, u_opt), lost);
    }
    table.print(std::cout);
  }

  // 3. Reaction-rule family.
  {
    std::cout << "Ablation 3: replication rule (reaction function family)\n";
    util::TablePrinter table({"rule", "observed U", "loss vs OPT %"});
    table.set_precision(4);
    struct Rule {
      const char* name;
      std::function<std::unique_ptr<core::QcrPolicy>()> make;
    };
    utility::ReactionFunction tuned(u, scenario.mu,
                                    static_cast<double>(nodes), 0.1);
    std::vector<Rule> rules;
    rules.push_back({"PASSIVE (psi = const, -> PROP)", [] {
                       return core::make_passive_policy(0.5);
                     }});
    rules.push_back({"PATH (psi ~ y, -> SQRT)", [&] {
                       return core::make_path_replication_policy(
                           0.5 / (static_cast<double>(nodes) /
                                  static_cast<double>(rho)));
                     }});
    rules.push_back({"QCR (psi from Table 1)", [&] {
                       return std::make_unique<core::QcrPolicy>(
                           "QCR",
                           [tuned](double y) { return tuned(y); },
                           core::QcrPolicy::MandateRouting::kOn);
                     }});
    for (const auto& rule : rules) {
      double total = 0.0;
      for (int t = 0; t < trials; ++t) {
        auto policy = rule.make();
        core::SimOptions options;
        options.cache_capacity = rho;
        util::Rng r = rng.split();
        total += core::simulate(scenario.trace, scenario.catalog, u, *policy,
                                options, r)
                     .observed_utility();
      }
      total /= trials;
      table.row(rule.name, total,
                core::normalized_loss_percent(total, u_opt));
    }
    table.print(std::cout);
  }
  std::cout << "U(OPT) reference: " << u_opt << '\n';
  return 0;
}
