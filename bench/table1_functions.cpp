// Table 1: delay-utility families with their associated gain, equilibrium
// condition phi and reaction function psi. For each family the closed
// forms are evaluated and cross-checked against direct numerical
// quadrature of the defining integrals; the table reports both plus the
// relative error, regenerating the paper's table in executable form.
#include <cmath>
#include <iostream>
#include <memory>

#include "common.hpp"
#include "impatience/util/math.hpp"
#include "impatience/utility/families.hpp"

using namespace impatience;

namespace {

// Direct quadrature of phi(x) = int mu t e^{-mu t x} c(t) dt, using the
// differential where it exists as a density; families with atoms (step)
// get a hand-written integrand.
double phi_numeric(const utility::DelayUtility& u, double mu, double x) {
  if (const auto* step = dynamic_cast<const utility::StepUtility*>(&u)) {
    return mu * step->tau() * std::exp(-mu * x * step->tau());
  }
  return util::integrate_to_inf([&](double t) {
    return mu * t * std::exp(-mu * t * x) * u.differential(t);
  });
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const double mu = flags.get_double("mu", 0.05);
  const double servers = flags.get_double("servers", 50.0);

  bench::banner("table1",
                "delay-utility families: gain, phi and psi closed forms");

  struct Row {
    std::string family;
    std::unique_ptr<utility::DelayUtility> u;
  };
  std::vector<Row> rows;
  rows.push_back({"step tau=1", std::make_unique<utility::StepUtility>(1.0)});
  rows.push_back(
      {"exp nu=0.1", std::make_unique<utility::ExponentialUtility>(0.1)});
  rows.push_back(
      {"inv power a=1.5", std::make_unique<utility::PowerUtility>(1.5)});
  rows.push_back(
      {"neg power a=0", std::make_unique<utility::PowerUtility>(0.0)});
  rows.push_back(
      {"neg power a=-1", std::make_unique<utility::PowerUtility>(-1.0)});
  rows.push_back({"neg log", std::make_unique<utility::NegLogUtility>()});

  util::TablePrinter gain_table(
      {"family", "x", "gain E[h(Y)] (closed)", "gain (Monte Carlo)",
       "rel err"});
  util::TablePrinter phi_table(
      {"family", "x", "phi (closed)", "phi (quadrature)", "rel err"});
  util::TablePrinter psi_table(
      {"family", "y", "psi (closed)", "psi = (S/y)phi(S/y)", "rel err"});
  gain_table.set_precision(5);
  phi_table.set_precision(5);
  psi_table.set_precision(5);

  double worst = 0.0;
  util::Rng rng(7);
  for (const auto& row : rows) {
    for (double x : {2.0, 10.0}) {
      // Gain: closed form vs Monte Carlo sample of E[h(Y)], Y~Exp(mu x).
      const double closed = row.u->expected_gain(mu * x);
      double mc = 0.0;
      const int n = 200000;
      for (int i = 0; i < n; ++i) mc += row.u->value(rng.exponential(mu * x));
      mc /= n;
      const double gain_err =
          std::abs(mc - closed) / std::max(1.0, std::abs(closed));
      gain_table.row(row.family, x, closed, mc, gain_err);

      const double phi_closed = utility::phi(*row.u, mu, x);
      const double phi_num = phi_numeric(*row.u, mu, x);
      const double phi_err =
          std::abs(phi_num - phi_closed) / std::abs(phi_closed);
      phi_table.row(row.family, x, phi_closed, phi_num, phi_err);
      worst = std::max(worst, phi_err);
    }
    for (double y : {2.0, 25.0}) {
      const double psi_closed = utility::psi(*row.u, mu, servers, y);
      const double xx = servers / y;
      const double psi_def = xx * phi_numeric(*row.u, mu, xx);
      const double err = std::abs(psi_def - psi_closed) / psi_closed;
      psi_table.row(row.family, y, psi_closed, psi_def, err);
      worst = std::max(worst, err);
    }
  }
  std::cout << "Gain U-contribution per unit demand (mu=" << mu << ")\n";
  gain_table.print(std::cout);
  std::cout << "Equilibrium condition phi (Property 1)\n";
  phi_table.print(std::cout);
  std::cout << "Reaction function psi (Property 2, |S|=" << servers << ")\n";
  psi_table.print(std::cout);
  std::cout << "worst closed-form vs quadrature relative error: " << worst
            << '\n';
  // Quadrature tolerance on the heavy-tailed integrands is ~1e-6.
  return worst < 1e-4 ? 0 : 1;
}
