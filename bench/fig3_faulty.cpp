// Figure 3 under injected sluggishness (docs/robustness.md): the paper's
// mandate-routing pathology, reproduced on a degraded channel. Meetings
// drop, exchanges truncate, and nodes churn; QCR without routing loses
// the mandates stranded on crashed relays and its allocation drifts away
// from the relaxed optimum, while QCR with mandate routing re-routes
// around the faults and sustains its expected utility.
//
// Self-checking: exits nonzero when routing fails to sustain utility at
// least as well as no-routing under faults, or when the faulty mandate
// conservation identity (created == written + outstanding + lost) breaks.
#include <iostream>

#include "common.hpp"
#include "impatience/utility/families.hpp"

using namespace impatience;

namespace {

std::string fmt(double v, int precision = 4) {
  std::ostringstream os;
  os.precision(precision);
  os << v;
  return os.str();
}

double tail_mean(const std::vector<stats::SeriesPoint>& s) {
  double total = 0.0;
  std::size_t n = 0;
  for (std::size_t k = s.size() / 2; k < s.size(); ++k) {
    total += s[k].value;
    ++n;
  }
  return n ? total / static_cast<double>(n) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const trace::NodeId nodes = static_cast<trace::NodeId>(
      flags.get_int("nodes", 50));
  const trace::Slot slots = flags.get_long("slots", 5000);
  const double mu = flags.get_double("mu", 0.05);
  const int rho = flags.get_int("rho", 5);
  const double total_demand = flags.get_double("demand", 1.0);
  const std::uint64_t seed = static_cast<std::uint64_t>(
      flags.get_long("seed", 20090212));

  // The degraded channel: by default a sluggish network that drops a
  // fifth of all meetings, truncates a fifth of the surviving exchanges,
  // and crashes nodes now and then (mandates on crashed relays are lost).
  fault::FaultConfig faults;
  faults.p_drop = 0.2;
  faults.p_truncate = 0.2;
  faults.p_crash = 0.0005;
  faults.mean_downtime = 20.0;
  bench::apply_fault_flags(flags, faults);

  bench::banner("fig3-faulty",
                "mandate routing under injected faults (power alpha=0)");
  std::cout << "faults: drop=" << faults.p_drop
            << " truncate=" << faults.p_truncate
            << " crash=" << faults.p_crash
            << " downtime=" << faults.mean_downtime << '\n';

  util::Rng rng(seed);
  auto trace = trace::generate_poisson({nodes, slots, mu}, rng);
  auto scenario = core::make_scenario(
      std::move(trace),
      core::Catalog::pareto(static_cast<core::ItemId>(nodes), 1.0,
                            total_demand),
      rho);
  utility::PowerUtility u(0.0);

  alloc::HomogeneousModel model{scenario.mu, nodes, nodes,
                                alloc::SystemMode::kPureP2P};
  core::SimOptions options;
  options.metrics.sample_every = std::max<trace::Slot>(1, slots / 20);
  options.metrics.bin_width = static_cast<double>(slots) / 20.0;
  options.expected_welfare =
      core::homogeneous_welfare_probe(scenario.catalog, u, model);
  options.faults = faults;

  struct Run {
    std::string name;
    core::SimulationResult result;
  };
  std::vector<Run> runs;
  for (bool routing : {true, false}) {
    core::QcrOptions qcr;
    qcr.mandate_routing = routing;
    core::SimOptions run_options = options;
    // Both runs face the identical degraded channel (same fault stream)
    // and the same simulation stream: the only difference is routing.
    run_options.faults.seed = engine::child_seed(seed, "fault");
    util::Rng r(engine::child_seed(seed, "sim"));
    runs.push_back({routing ? "QCR" : "QCRWOM",
                    core::run_qcr(scenario, u, qcr, run_options, r)});
  }

  std::cout << "expected utility over time (faulty channel)\n";
  {
    util::TablePrinter table({"time", "QCR", "QCRWOM"});
    const std::size_t rows = runs.front().result.expected_series.size();
    for (std::size_t k = 0; k < rows; ++k) {
      table.add_row({fmt(runs[0].result.expected_series[k].time, 6),
                     fmt(runs[0].result.expected_series[k].value),
                     fmt(runs[1].result.expected_series[k].value)});
    }
    table.print(std::cout);
  }

  bool ok = true;
  std::cout << "fault accounting:\n";
  for (const auto& r : runs) {
    const auto& f = r.result.faults;
    std::cout << "  " << r.name << ": dropped=" << f.meetings_dropped
              << " truncated=" << f.exchanges_truncated
              << " deferred=" << f.fulfilments_deferred
              << " crashes=" << f.crashes
              << " mandates_lost=" << f.mandates_lost
              << " replicas_lost=" << f.replicas_lost << '\n';
    // Graceful degradation of the conservation invariant: every created
    // mandate is written, still outstanding, or accounted as lost.
    const long balance = r.result.mandates_created -
                         (r.result.replicas_written +
                          r.result.outstanding_mandates + f.mandates_lost);
    if (balance != 0) {
      std::cout << "  " << r.name
                << ": CONSERVATION VIOLATED (balance=" << balance << ")\n";
      ok = false;
    }
  }

  const double with_routing = tail_mean(runs[0].result.expected_series);
  const double without = tail_mean(runs[1].result.expected_series);
  std::cout << "second-half mean expected utility: QCR=" << fmt(with_routing)
            << " QCRWOM=" << fmt(without) << '\n';
  // Utilities here are losses (h(t) = -t): closer to zero is better. The
  // paper's pathology — no-routing drifts — must persist under faults.
  if (with_routing < without) {
    std::cout << "FAIL: routing sustained LOWER utility than no-routing "
                 "under faults\n";
    ok = false;
  } else {
    std::cout << "QCR sustains >= utility of QCRWOM under faults "
                 "(paper: QCRWOM degrades over time)\n";
  }
  return ok ? 0 : 1;
}
