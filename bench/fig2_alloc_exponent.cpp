// Figure 2: the exponent of the optimal allocation for power delay-
// utilities. Property 1 predicts x_i proportional to d_i^{1/(2-alpha)};
// we solve the relaxed optimum numerically over a Pareto catalog and fit
// the exponent by least squares on log x vs log d, then print it next to
// the closed form. At alpha -> -inf the allocation tends to uniform
// (exponent 0); at alpha -> 2 the most popular items dominate.
#include <cmath>
#include <iostream>

#include "common.hpp"
#include "impatience/alloc/solvers.hpp"
#include "impatience/utility/families.hpp"

using namespace impatience;

namespace {

/// Least-squares slope of log(x_i) against log(d_i) over interior items.
double fit_exponent(const std::vector<double>& demand,
                    const alloc::ItemCounts& x, double num_servers) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  int n = 0;
  for (std::size_t i = 0; i < demand.size(); ++i) {
    if (x.x[i] <= 1e-6 || x.x[i] >= num_servers - 1e-6) continue;
    const double lx = std::log(demand[i]);
    const double ly = std::log(x.x[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    ++n;
  }
  if (n < 2) return std::numeric_limits<double>::quiet_NaN();
  return (n * sxy - sx * sy) / (n * sxx - sx * sx);
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const int items = flags.get_int("items", 50);
  const double servers = flags.get_double("servers", 200.0);
  const double capacity = flags.get_double("capacity", 400.0);
  const double mu = flags.get_double("mu", 0.05);
  const double omega = flags.get_double("omega", 1.0);

  bench::banner("fig2",
                "optimal-allocation exponent vs alpha (power utilities)");

  std::vector<double> demand(items);
  for (int i = 0; i < items; ++i) {
    demand[i] = std::pow(static_cast<double>(i + 1), -omega);
  }

  util::TablePrinter table(
      {"alpha", "fitted exponent", "theory 1/(2-alpha)", "abs error"});
  table.set_precision(4);
  double max_err = 0.0;
  for (double alpha = -2.0; alpha < 1.8 + 1e-9; alpha += 0.25) {
    std::unique_ptr<utility::DelayUtility> u;
    if (std::abs(alpha - 1.0) < 1e-12) {
      u = std::make_unique<utility::NegLogUtility>();
    } else {
      u = std::make_unique<utility::PowerUtility>(alpha);
    }
    const auto x =
        alloc::relaxed_optimum(demand, *u, mu, servers, capacity);
    const double fitted = fit_exponent(demand, x, servers);
    const double theory = 1.0 / (2.0 - alpha);
    const double err = std::abs(fitted - theory);
    max_err = std::max(max_err, err);
    table.row(alpha, fitted, theory, err);
  }
  table.print(std::cout);
  std::cout << "max |fitted - theory| = " << max_err << '\n';
  // Reproduction criterion: the fitted exponent tracks 1/(2 - alpha).
  return max_err < 0.05 ? 0 : 1;
}
