// Figure 4: QCR vs fixed allocations under homogeneous contacts.
//   (left)  power delay-utility, sweeping alpha in [-2, 1]
//   (right) step delay-utility, sweeping tau in [1, 1000] (log grid)
// Setting from Section 6.2: 50 nodes, 50 items, rho = 5, mu = 0.05, pure
// P2P, Pareto(1) demand. The y values are 100*(U - U_OPT)/|U_OPT|.
#include <iostream>

#include "common.hpp"
#include "impatience/utility/families.hpp"

using namespace impatience;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const trace::NodeId nodes =
      static_cast<trace::NodeId>(flags.get_int("nodes", 50));
  const trace::Slot slots = flags.get_long("slots", 5000);
  const double mu = flags.get_double("mu", 0.05);
  const int rho = flags.get_int("rho", 5);
  const int trials = flags.get_int("trials", 5);
  const double total_demand = flags.get_double("demand", 1.0);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_long("seed", 42));

  bench::banner("fig4", "QCR vs fixed allocations, homogeneous contacts");

  bench::ComparisonConfig config;
  config.trials = trials;
  config.opt_mode = core::OptMode::kHomogeneous;
  bench::apply_engine_flags(flags, config, seed);
  // --resume <prior fig4_manifest.json>: re-run only the unfinished jobs.
  const auto resume = bench::load_resume_flag(flags);
  if (resume) config.resume = &*resume;
  engine::RunReport manifest;

  // Scenario traces come from per-panel child streams; every simulation
  // below draws from its own per-(algorithm, trial) stream, so the whole
  // figure is bit-identical for any --threads value.
  auto make_scenario = [&](util::Rng& r) {
    auto trace = trace::generate_poisson({nodes, slots, mu}, r);
    return core::make_scenario(
        std::move(trace),
        core::Catalog::pareto(static_cast<core::ItemId>(nodes), 1.0,
                              total_demand),
        rho);
  };

  // Left panel: power utility, alpha sweep.
  {
    config.label = "fig4-power";
    std::vector<bench::ComparisonPoint> points;
    std::uint64_t index = 0;
    for (double alpha : {-2.0, -1.5, -1.0, -0.5, 0.0, 0.5, 0.9}) {
      utility::PowerUtility u(alpha);
      const std::uint64_t point_seed =
          engine::child_seed(seed, "fig4-power", index++);
      util::Rng scenario_rng(engine::child_seed(point_seed, "scenario"));
      const auto scenario = make_scenario(scenario_rng);
      points.push_back(bench::run_comparison(scenario, u, alpha, config,
                                             point_seed, &manifest));
    }
    bench::print_loss_table(
        "Figure 4 (left): power delay-utility, loss vs OPT (%) by alpha",
        "alpha", points);
    bench::maybe_write_csv(flags, "fig4_power.csv", "alpha", points);
  }

  // Right panel: step utility, tau sweep.
  {
    config.label = "fig4-step";
    std::vector<bench::ComparisonPoint> points;
    std::uint64_t index = 0;
    for (double tau : {1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1000.0}) {
      utility::StepUtility u(tau);
      const std::uint64_t point_seed =
          engine::child_seed(seed, "fig4-step", index++);
      util::Rng scenario_rng(engine::child_seed(point_seed, "scenario"));
      const auto scenario = make_scenario(scenario_rng);
      points.push_back(bench::run_comparison(scenario, u, tau, config,
                                             point_seed, &manifest));
    }
    bench::print_loss_table(
        "Figure 4 (right): step delay-utility, loss vs OPT (%) by tau",
        "tau", points);
    bench::maybe_write_csv(flags, "fig4_step.csv", "tau", points);
  }

  manifest.root_seed = seed;
  bench::maybe_write_manifest(
      flags, "fig4_manifest.json", manifest,
      {{"nodes", std::to_string(nodes)},
       {"slots", std::to_string(slots)},
       {"mu", std::to_string(mu)},
       {"rho", std::to_string(rho)},
       {"trials", std::to_string(trials)},
       {"demand", std::to_string(total_demand)},
       {"seed", std::to_string(seed)}});

  std::cout << "expected shape (paper): UNI and DOM fail at the extremes; "
               "SQRT strong;\nPROP weak for power utilities; QCR tracks "
               "OPT without control-channel state.\n";
  return 0;
}
