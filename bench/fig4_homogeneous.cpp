// Figure 4: QCR vs fixed allocations under homogeneous contacts.
//   (left)  power delay-utility, sweeping alpha in [-2, 1]
//   (right) step delay-utility, sweeping tau in [1, 1000] (log grid)
// Setting from Section 6.2: 50 nodes, 50 items, rho = 5, mu = 0.05, pure
// P2P, Pareto(1) demand. The y values are 100*(U - U_OPT)/|U_OPT|.
//
// `--eval mf` swaps the trace-driven simulations for the mean-field
// evaluator (core/mean_field.hpp): the same competitor set and loss
// tables, computed in replica-count space with no trace and no per-node
// state, so `--nodes 1000000` finishes in seconds in O(N + T) memory
// (docs/perf.md §6). The default `--eval sim` path is byte-identical to
// previous releases.
#include <sys/resource.h>

#include <iostream>

#include "common.hpp"
#include "impatience/core/mean_field.hpp"
#include "impatience/utility/families.hpp"

using namespace impatience;

namespace {

constexpr double kPowerAlphas[] = {-2.0, -1.5, -1.0, -0.5, 0.0, 0.5, 0.9};
constexpr double kStepTaus[] = {1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1000.0};

/// One mean-field sweep point: OPT/UNI/SQRT/PROP/DOM welfare rates from
/// the count-space competitor set, QCR from the replica-fraction ODE.
/// Deterministic — no trials, no seeds, no trace.
bench::ComparisonPoint mean_field_point(const std::vector<double>& demand,
                                        const utility::DelayUtility& u,
                                        const core::MeanFieldModel& model,
                                        int rho, double x) {
  bench::ComparisonPoint point;
  point.x = x;
  for (const auto& [name, counts] :
       core::mean_field_competitors(demand, u, model, rho)) {
    const double w = core::mean_field_welfare(counts, demand, u, model);
    if (name == "OPT") {
      point.opt_utility = w;
    } else {
      point.utility[name] = w;
    }
  }
  point.utility["QCR"] =
      core::mean_field_qcr(demand, u, model, rho).mean_welfare_rate;
  for (const auto& [name, w] : point.utility) {
    point.loss_percent[name] =
        core::normalized_loss_percent(w, point.opt_utility);
  }
  return point;
}

int run_mean_field(const util::Flags& flags, trace::NodeId nodes,
                   core::ItemId items, trace::Slot slots, double mu, int rho,
                   double total_demand) {
  bench::banner("fig4",
                "QCR vs fixed allocations, mean-field evaluator (no trace)");
  std::cout << "mean-field: N=" << nodes << " items=" << items
            << " T=" << slots << " mu=" << mu << " rho=" << rho << '\n';
  core::MeanFieldModel model;
  model.mu = mu;
  model.num_nodes = static_cast<double>(nodes);
  model.horizon = slots;
  const auto catalog = core::Catalog::pareto(items, 1.0, total_demand);
  const auto& demand = catalog.demands();

  {
    std::vector<bench::ComparisonPoint> points;
    for (double alpha : kPowerAlphas) {
      utility::PowerUtility u(alpha);
      points.push_back(mean_field_point(demand, u, model, rho, alpha));
    }
    bench::print_loss_table(
        "Figure 4 (left): power delay-utility, mean-field loss vs OPT (%) "
        "by alpha",
        "alpha", points);
    bench::maybe_write_csv(flags, "fig4_power_mf.csv", "alpha", points);
  }
  {
    std::vector<bench::ComparisonPoint> points;
    for (double tau : kStepTaus) {
      utility::StepUtility u(tau);
      points.push_back(mean_field_point(demand, u, model, rho, tau));
    }
    bench::print_loss_table(
        "Figure 4 (right): step delay-utility, mean-field loss vs OPT (%) "
        "by tau",
        "tau", points);
    bench::maybe_write_csv(flags, "fig4_step_mf.csv", "tau", points);
  }

  // The point of the mf path is the memory profile: no trace, no per-node
  // state. ru_maxrss (KiB on Linux) goes to stdout so
  // scripts/bench_snapshot.sh can record it in the snapshot context.
  struct rusage usage;
  getrusage(RUSAGE_SELF, &usage);
  std::cout << "[mem] peak_rss_kb=" << usage.ru_maxrss << '\n';
  std::cout << "expected shape (paper): same ordering as --eval sim; the "
               "discrete gain model is exact\nfor the frozen allocations, "
               "the QCR row is the fluid-limit ODE approximation.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const trace::NodeId nodes =
      static_cast<trace::NodeId>(flags.get_int("nodes", 50));
  // Catalog size defaults to the node count (the paper's 50x50 setting);
  // --items decouples them so million-node mean-field runs keep the
  // paper's catalog.
  const core::ItemId items =
      static_cast<core::ItemId>(flags.get_int("items", nodes));
  const trace::Slot slots = flags.get_long("slots", 5000);
  const double mu = flags.get_double("mu", 0.05);
  const int rho = flags.get_int("rho", 5);
  const int trials = flags.get_int("trials", 5);
  const double total_demand = flags.get_double("demand", 1.0);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_long("seed", 42));
  const std::string eval = flags.get_string("eval", "sim");
  if (eval == "mf") {
    return run_mean_field(flags, nodes, items, slots, mu, rho, total_demand);
  }
  if (eval != "sim") {
    std::cerr << "fig4: --eval must be 'sim' or 'mf', got '" << eval << "'\n";
    return 2;
  }

  bench::banner("fig4", "QCR vs fixed allocations, homogeneous contacts");

  bench::ComparisonConfig config;
  config.trials = trials;
  config.opt_mode = core::OptMode::kHomogeneous;
  bench::apply_engine_flags(flags, config, seed);
  // --resume <prior fig4_manifest.json>: re-run only the unfinished jobs.
  const auto resume = bench::load_resume_flag(flags);
  if (resume) config.resume = &*resume;
  engine::RunReport manifest;

  // Scenario traces come from per-panel child streams; every simulation
  // below draws from its own per-(algorithm, trial) stream, so the whole
  // figure is bit-identical for any --threads value.
  auto make_scenario = [&](util::Rng& r) {
    auto trace = trace::generate_poisson({nodes, slots, mu}, r);
    return core::make_scenario(
        std::move(trace),
        core::Catalog::pareto(items, 1.0, total_demand), rho);
  };

  // Left panel: power utility, alpha sweep.
  {
    config.label = "fig4-power";
    std::vector<bench::ComparisonPoint> points;
    std::uint64_t index = 0;
    for (double alpha : kPowerAlphas) {
      utility::PowerUtility u(alpha);
      const std::uint64_t point_seed =
          engine::child_seed(seed, "fig4-power", index++);
      util::Rng scenario_rng(engine::child_seed(point_seed, "scenario"));
      const auto scenario = make_scenario(scenario_rng);
      points.push_back(bench::run_comparison(scenario, u, alpha, config,
                                             point_seed, &manifest));
    }
    bench::print_loss_table(
        "Figure 4 (left): power delay-utility, loss vs OPT (%) by alpha",
        "alpha", points);
    bench::maybe_write_csv(flags, "fig4_power.csv", "alpha", points);
  }

  // Right panel: step utility, tau sweep.
  {
    config.label = "fig4-step";
    std::vector<bench::ComparisonPoint> points;
    std::uint64_t index = 0;
    for (double tau : kStepTaus) {
      utility::StepUtility u(tau);
      const std::uint64_t point_seed =
          engine::child_seed(seed, "fig4-step", index++);
      util::Rng scenario_rng(engine::child_seed(point_seed, "scenario"));
      const auto scenario = make_scenario(scenario_rng);
      points.push_back(bench::run_comparison(scenario, u, tau, config,
                                             point_seed, &manifest));
    }
    bench::print_loss_table(
        "Figure 4 (right): step delay-utility, loss vs OPT (%) by tau",
        "tau", points);
    bench::maybe_write_csv(flags, "fig4_step.csv", "tau", points);
  }

  manifest.root_seed = seed;
  bench::maybe_write_manifest(
      flags, "fig4_manifest.json", manifest,
      {{"nodes", std::to_string(nodes)},
       {"slots", std::to_string(slots)},
       {"mu", std::to_string(mu)},
       {"rho", std::to_string(rho)},
       {"trials", std::to_string(trials)},
       {"demand", std::to_string(total_demand)},
       {"seed", std::to_string(seed)}});

  std::cout << "expected shape (paper): UNI and DOM fail at the extremes; "
               "SQRT strong;\nPROP weak for power utilities; QCR tracks "
               "OPT without control-channel state.\n";
  return 0;
}
