// Extension: the rho (cache size) and omega (popularity skew) sweeps the
// paper defers to its technical report ("Other values of omega and rho
// can be found in [21]"). Homogeneous contacts, step tau=10 and power
// alpha=0 utilities.
#include <iostream>

#include "common.hpp"
#include "impatience/utility/families.hpp"

using namespace impatience;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto nodes = static_cast<trace::NodeId>(flags.get_int("nodes", 50));
  const trace::Slot slots = flags.get_long("slots", 4000);
  const double mu = flags.get_double("mu", 0.05);
  const int trials = flags.get_int("trials", 3);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_long("seed", 271828));

  bench::banner("sweep", "cache size rho and popularity skew omega");

  bench::ComparisonConfig config;
  config.trials = trials;
  config.opt_mode = core::OptMode::kHomogeneous;
  bench::apply_engine_flags(flags, config, seed);
  engine::RunReport manifest;

  auto scenario_for = [&](int rho, double omega, util::Rng& r) {
    auto trace = trace::generate_poisson({nodes, slots, mu}, r);
    return core::make_scenario(
        std::move(trace),
        core::Catalog::pareto(static_cast<core::ItemId>(nodes), omega, 1.0),
        rho);
  };

  for (const char* which : {"step", "power"}) {
    std::unique_ptr<utility::DelayUtility> u =
        which == std::string("step")
            ? utility::make_utility("step:tau=10")
            : utility::make_utility("power:alpha=0");

    // rho sweep at omega = 1.
    {
      config.label = std::string("sweep-rho-") + which;
      std::vector<bench::ComparisonPoint> points;
      std::uint64_t index = 0;
      for (int rho : {1, 2, 5, 10}) {
        const std::uint64_t point_seed =
            engine::child_seed(seed, config.label, index++);
        util::Rng sr(engine::child_seed(point_seed, "scenario"));
        const auto scenario = scenario_for(rho, 1.0, sr);
        points.push_back(bench::run_comparison(scenario, *u,
                                               static_cast<double>(rho),
                                               config, point_seed,
                                               &manifest));
      }
      bench::print_loss_table(std::string("rho sweep (omega=1, ") +
                                  u->name() + "), loss vs OPT (%)",
                              "rho", points);
    }
    // omega sweep at rho = 5.
    {
      config.label = std::string("sweep-omega-") + which;
      std::vector<bench::ComparisonPoint> points;
      std::uint64_t index = 0;
      for (double omega : {0.0, 0.5, 1.0, 2.0}) {
        const std::uint64_t point_seed =
            engine::child_seed(seed, config.label, index++);
        util::Rng sr(engine::child_seed(point_seed, "scenario"));
        const auto scenario = scenario_for(5, omega, sr);
        points.push_back(bench::run_comparison(scenario, *u, omega, config,
                                               point_seed, &manifest));
      }
      bench::print_loss_table(std::string("omega sweep (rho=5, ") +
                                  u->name() + "), loss vs OPT (%)",
                              "omega", points);
    }
  }

  manifest.root_seed = seed;
  bench::maybe_write_manifest(
      flags, "sweep_manifest.json", manifest,
      {{"nodes", std::to_string(nodes)},
       {"slots", std::to_string(slots)},
       {"mu", std::to_string(mu)},
       {"trials", std::to_string(trials)},
       {"seed", std::to_string(seed)}});
  std::cout << "expected shape: heuristic gaps shrink as rho grows (more "
               "room forgives\nmisallocation) and widen with omega (skew "
               "raises the stakes); QCR tracks OPT\nthroughout.\n";
  return 0;
}
