// Figure 3: the effect of mandate routing (homogeneous contacts, power
// delay-utility with alpha = 0, i.e. h(t) = -t).
//   (a) expected utility of the live allocation over time
//   (b) observed utility over time
//   (c) replica counts of the five most requested items, with routing
//   (d) same, without routing
// Matches the paper's setting: 50 nodes, 50 items, rho = 5, mu = 0.05.
#include <iostream>

#include "common.hpp"
#include "impatience/utility/families.hpp"

using namespace impatience;

namespace {

struct SeriesBundle {
  std::string name;
  core::SimulationResult result;
};

std::string fmt(double v, int precision = 4) {
  std::ostringstream os;
  os.precision(precision);
  os << v;
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const trace::NodeId nodes = static_cast<trace::NodeId>(
      flags.get_int("nodes", 50));
  const trace::Slot slots = flags.get_long("slots", 5000);
  const double mu = flags.get_double("mu", 0.05);
  const int rho = flags.get_int("rho", 5);
  const double total_demand = flags.get_double("demand", 1.0);
  const std::uint64_t seed = static_cast<std::uint64_t>(
      flags.get_long("seed", 20090212));

  bench::banner("fig3",
                "mandate routing (power alpha=0, homogeneous contacts)");

  util::Rng rng(seed);
  auto trace = trace::generate_poisson({nodes, slots, mu}, rng);
  auto scenario = core::make_scenario(
      std::move(trace),
      core::Catalog::pareto(static_cast<core::ItemId>(nodes), 1.0,
                            total_demand),
      rho);
  utility::PowerUtility u(0.0);

  alloc::HomogeneousModel model{scenario.mu, nodes, nodes,
                                alloc::SystemMode::kPureP2P};
  core::SimOptions options;
  options.metrics.sample_every = std::max<trace::Slot>(1, slots / 20);
  options.metrics.bin_width = static_cast<double>(slots) / 20.0;
  options.metrics.tracked_items = {0, 1, 2, 3, 4};
  options.expected_welfare =
      core::homogeneous_welfare_probe(scenario.catalog, u, model);

  std::vector<SeriesBundle> runs;
  // QCR with and without mandate routing.
  for (bool routing : {true, false}) {
    core::QcrOptions qcr;
    qcr.mandate_routing = routing;
    util::Rng r = rng.split();
    runs.push_back({routing ? "QCR" : "QCRWOM",
                    core::run_qcr(scenario, u, qcr, options, r)});
  }
  // Fixed competitors OPT / UNI / DOM (the paper's panel (a)/(b) set).
  {
    util::Rng placement_rng = rng.split();
    const auto competitors = core::build_competitors(
        scenario, u, core::OptMode::kHomogeneous, placement_rng);
    for (const auto& [name, placement] : competitors) {
      if (name != "OPT" && name != "UNI" && name != "DOM") continue;
      util::Rng r = rng.split();
      runs.push_back(
          {name, core::run_fixed(scenario, u, name, placement, options, r)});
    }
  }

  // Panel (a): expected utility of the live allocation.
  {
    std::cout << "Figure 3(a): expected utility over time\n";
    std::vector<std::string> header{"time"};
    for (const auto& r : runs) header.push_back(r.name);
    util::TablePrinter table(header);
    const std::size_t rows = runs.front().result.expected_series.size();
    for (std::size_t k = 0; k < rows; ++k) {
      std::vector<std::string> cells{
          fmt(runs.front().result.expected_series[k].time, 6)};
      for (const auto& r : runs) {
        cells.push_back(fmt(r.result.expected_series[k].value));
      }
      table.add_row(cells);
    }
    table.print(std::cout);
  }

  // Panel (b): observed utility over time (binned gain rate).
  {
    std::cout << "Figure 3(b): observed utility over time\n";
    std::vector<std::string> header{"time"};
    for (const auto& r : runs) header.push_back(r.name);
    util::TablePrinter table(header);
    const std::size_t rows = runs.front().result.observed_series.size();
    for (std::size_t k = 0; k < rows; ++k) {
      std::vector<std::string> cells{
          fmt(runs.front().result.observed_series[k].time, 6)};
      for (const auto& r : runs) {
        cells.push_back(fmt(r.result.observed_series[k].value));
      }
      table.add_row(cells);
    }
    table.print(std::cout);
  }

  // Panels (c)/(d): replica counts of the five most requested items.
  const auto targets = alloc::relaxed_optimum(
      scenario.catalog.demands(), u, scenario.mu,
      static_cast<double>(nodes), static_cast<double>(rho) * nodes);
  for (const auto& r : runs) {
    if (r.name != "QCR" && r.name != "QCRWOM") continue;
    std::cout << "Figure 3(" << (r.name == "QCR" ? 'c' : 'd')
              << "): replica counts, " << r.name << " (targets:";
    for (int i = 0; i < 5; ++i) std::cout << ' ' << fmt(targets.x[i], 3);
    std::cout << ")\n";
    util::TablePrinter table(
        {"time", "msg 1", "msg 2", "msg 3", "msg 4", "msg 5"});
    const std::size_t rows = r.result.replica_series[0].size();
    for (std::size_t k = 0; k < rows; ++k) {
      std::vector<std::string> cells{
          fmt(r.result.replica_series[0][k].time, 6)};
      for (int item = 0; item < 5; ++item) {
        cells.push_back(fmt(r.result.replica_series[item][k].value, 3));
      }
      table.add_row(cells);
    }
    table.print(std::cout);
  }

  // Headline: second-half mean expected utility, QCR vs QCRWOM vs OPT.
  auto tail_mean = [](const std::vector<stats::SeriesPoint>& s) {
    double total = 0.0;
    std::size_t n = 0;
    for (std::size_t k = s.size() / 2; k < s.size(); ++k) {
      total += s[k].value;
      ++n;
    }
    return n ? total / static_cast<double>(n) : 0.0;
  };
  std::cout << "second-half mean expected utility:\n";
  for (const auto& r : runs) {
    std::cout << "  " << r.name << ": "
              << fmt(tail_mean(r.result.expected_series)) << '\n';
  }
  const double qcr = tail_mean(runs[0].result.expected_series);
  const double wom = tail_mean(runs[1].result.expected_series);
  std::cout << "QCR sustains " << (qcr >= wom ? "higher" : "LOWER")
            << " utility than QCRWOM (paper: QCRWOM degrades over time)\n";
  return 0;
}
