// Extension (paper Section 7): clustered and evolving demand. The
// popularity ranking is reversed halfway through the run; a reactive
// distributed scheme like QCR adapts on the fly, while a frozen OPT
// computed for the initial demand decays into a mis-allocation. The
// full-knowledge hill climber (Section 4.1) re-converges fastest and
// upper-bounds what any meeting-local scheme could do.
#include <iostream>

#include "common.hpp"
#include "impatience/core/hill_climb_policy.hpp"
#include "impatience/utility/families.hpp"

using namespace impatience;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto nodes = static_cast<trace::NodeId>(flags.get_int("nodes", 50));
  const trace::Slot slots = flags.get_long("slots", 6000);
  const trace::Slot shift_at = flags.get_long("shift-at", slots / 2);
  const double mu = flags.get_double("mu", 0.05);
  const int rho = flags.get_int("rho", 5);

  bench::banner("extension-dynamic",
                "popularity reversal mid-run (evolving demand, Section 7)");

  util::Rng rng(24601);
  auto trace = trace::generate_poisson({nodes, slots, mu}, rng);
  auto catalog = core::Catalog::pareto(static_cast<core::ItemId>(nodes),
                                       1.0, 1.0);
  std::vector<double> reversed(catalog.demands().rbegin(),
                               catalog.demands().rend());
  auto scenario = core::make_scenario(std::move(trace), catalog, rho);
  utility::StepUtility u(10.0);

  core::SimOptions options;
  options.cache_capacity = rho;
  options.metrics.bin_width = static_cast<double>(slots) / 24.0;
  options.demand_schedule.emplace_back(shift_at, core::Catalog(reversed));

  std::vector<std::pair<std::string, core::SimulationResult>> runs;

  // Frozen OPT for the *initial* demand.
  {
    util::Rng pr = rng.split();
    const auto set = core::build_competitors(
        scenario, u, core::OptMode::kHomogeneous, pr);
    util::Rng r = rng.split();
    runs.emplace_back("OPT(frozen)",
                      core::run_fixed(scenario, u, "OPT", set[0].placement,
                                      options, r));
  }
  // QCR (purely local).
  {
    util::Rng r = rng.split();
    runs.emplace_back("QCR",
                      core::run_qcr(scenario, u, core::QcrOptions{},
                                    options, r));
  }
  // Hill climber with full knowledge of the *current* demand: it is told
  // about the reversal by swapping its demand vector... it cannot be; it
  // keeps the initial demand, showing that even an oracle-for-stale-
  // demand decays. (A fully informed oracle would re-run OPT.)
  {
    alloc::HomogeneousModel model{scenario.mu, nodes, nodes,
                                  alloc::SystemMode::kPureP2P};
    core::HillClimbPolicy policy(scenario.catalog.demands(), u, model);
    core::SimOptions hill_options = options;
    hill_options.sticky_replicas = false;
    util::Rng r = rng.split();
    auto result = core::simulate(scenario.trace, scenario.catalog, u,
                                 policy, hill_options, r);
    result.policy = "HILL(stale)";
    runs.emplace_back("HILL(stale)", std::move(result));
  }

  std::cout << "observed utility per time window (popularity reversal at t="
            << shift_at << ")\n";
  std::vector<std::string> header{"t"};
  for (const auto& [name, _] : runs) header.push_back(name);
  util::TablePrinter table(header);
  table.set_precision(4);
  const std::size_t rows = runs.front().second.observed_series.size();
  for (std::size_t k = 0; k < rows; ++k) {
    std::vector<std::string> cells;
    std::ostringstream os;
    os << runs.front().second.observed_series[k].time;
    cells.push_back(os.str());
    for (const auto& [_, result] : runs) {
      std::ostringstream vo;
      vo.precision(4);
      vo << result.observed_series[k].value;
      cells.push_back(vo.str());
    }
    table.add_row(cells);
  }
  table.print(std::cout);

  // Headline: mean observed utility before vs after the shift.
  auto window_mean = [&](const core::SimulationResult& r, bool after) {
    double total = 0.0;
    std::size_t n = 0;
    for (const auto& pt : r.observed_series) {
      const bool in_after = pt.time > static_cast<double>(shift_at) +
                                          options.metrics.bin_width;
      const bool in_before = pt.time < static_cast<double>(shift_at);
      if ((after && in_after) || (!after && in_before)) {
        total += pt.value;
        ++n;
      }
    }
    return n ? total / static_cast<double>(n) : 0.0;
  };
  util::TablePrinter summary({"scheme", "U before shift", "U after shift",
                              "retained %"});
  summary.set_precision(4);
  for (const auto& [name, result] : runs) {
    const double before = window_mean(result, false);
    const double after = window_mean(result, true);
    summary.row(name, before, after,
                before != 0.0 ? 100.0 * after / before : 0.0);
  }
  summary.print(std::cout);
  std::cout << "expected shape: QCR retains most of its utility across the "
               "reversal (it tracks\ndemand implicitly); schemes tuned to "
               "stale demand do not.\n";
  return 0;
}
