// Engine micro-benchmarks (google-benchmark): transform evaluation,
// solvers, trace generation and simulator throughput.
#include <benchmark/benchmark.h>

#include <numeric>
#include <utility>

#include "impatience/alloc/heuristics.hpp"
#include "impatience/alloc/oracle.hpp"
#include "impatience/alloc/rounding.hpp"
#include "impatience/alloc/solvers.hpp"
#include "impatience/core/experiment.hpp"
#include "impatience/core/mean_field.hpp"
#include "impatience/trace/event_source.hpp"
#include "impatience/trace/generators.hpp"
#include "impatience/trace/partition.hpp"
#include "impatience/util/math.hpp"
#include "impatience/utility/cached_transform.hpp"
#include "impatience/utility/discrete.hpp"
#include "impatience/utility/families.hpp"
#include "impatience/utility/fit.hpp"
#include "impatience/utility/reaction.hpp"

using namespace impatience;

namespace {

std::vector<double> pareto_demand(std::size_t n) {
  std::vector<double> d(n);
  for (std::size_t i = 0; i < n; ++i) d[i] = 1.0 / static_cast<double>(i + 1);
  return d;
}

void BM_RngUniform(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.uniform());
  }
}
BENCHMARK(BM_RngUniform);

void BM_RngPoisson(benchmark::State& state) {
  util::Rng rng(2);
  const double lambda = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.poisson(lambda));
  }
}
BENCHMARK(BM_RngPoisson)->Arg(1)->Arg(50);

void BM_QuadratureLossTransform(benchmark::State& state) {
  // The numeric fallback path (tabulated utilities use closed forms; this
  // measures integrate_to_inf on a smooth integrand).
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::integrate_to_inf(
        [](double t) { return std::exp(-0.5 * t) * 0.3 * std::exp(-0.3 * t); }));
  }
}
BENCHMARK(BM_QuadratureLossTransform);

void BM_WelfareHomogeneous(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto demand = pareto_demand(n);
  alloc::ItemCounts x;
  x.x.assign(n, 5.0);
  utility::StepUtility u(10.0);
  alloc::HomogeneousModel m{0.05, 50, 50, alloc::SystemMode::kPureP2P};
  for (auto _ : state) {
    benchmark::DoNotOptimize(alloc::welfare_homogeneous(x, demand, u, m));
  }
}
BENCHMARK(BM_WelfareHomogeneous)->Arg(50)->Arg(500);

void BM_HomogeneousGreedy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto demand = pareto_demand(n);
  utility::StepUtility u(10.0);
  alloc::HomogeneousModel m{0.05, 50, 50, alloc::SystemMode::kPureP2P};
  for (auto _ : state) {
    benchmark::DoNotOptimize(alloc::homogeneous_greedy(demand, u, m, 250));
  }
}
BENCHMARK(BM_HomogeneousGreedy)->Arg(50)->Arg(500);

void BM_RelaxedOptimum(benchmark::State& state) {
  const auto demand = pareto_demand(50);
  utility::PowerUtility u(0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        alloc::relaxed_optimum(demand, u, 0.05, 50.0, 250.0));
  }
}
BENCHMARK(BM_RelaxedOptimum);

void BM_LazyGreedyPlacement(benchmark::State& state) {
  const auto n = static_cast<trace::NodeId>(state.range(0));
  util::Rng rng(3);
  const auto trace = trace::generate_poisson({n, 500, 0.05}, rng);
  const auto rates = trace::estimate_rates(trace);
  const auto demand = pareto_demand(n);
  utility::StepUtility u(10.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        alloc::lazy_greedy_pure_p2p(rates, demand, u, n, 5));
  }
}
BENCHMARK(BM_LazyGreedyPlacement)->Arg(25)->Arg(50);

// Fig. 5-like heterogeneous greedy instance: 98 nodes (the Infocom'05
// experiment population), 500 items, every node both server and client.
// Shared across the marginal-gain and end-to-end greedy benchmarks so
// naive and oracle paths see identical inputs.
constexpr trace::NodeId kFig5Nodes = 98;
constexpr alloc::ItemId kFig5Items = 500;
constexpr int kFig5Capacity = 4;

struct Fig5Instance {
  trace::RateMatrix rates;
  std::vector<double> demand;
  std::vector<trace::NodeId> servers;
  std::vector<trace::NodeId> clients;
};

const Fig5Instance& fig5_instance() {
  static const Fig5Instance inst = [] {
    util::Rng rng(2026);
    trace::InfocomLikeParams params;
    params.num_nodes = kFig5Nodes;
    params.days = 1;
    const auto contact_trace = trace::generate_infocom_like(params, rng);
    std::vector<trace::NodeId> nodes(kFig5Nodes);
    std::iota(nodes.begin(), nodes.end(), trace::NodeId{0});
    return Fig5Instance{trace::estimate_rates(contact_trace),
                        pareto_demand(kFig5Items), nodes, nodes};
  }();
  return inst;
}

alloc::Placement fig5_partial_placement() {
  // A mid-build placement (~200 replicas) so marginals see non-trivial
  // holder sets, as they do inside the greedy loop.
  alloc::Placement placement(kFig5Items, kFig5Nodes, kFig5Capacity);
  util::Rng rng(31);
  int placed = 0;
  while (placed < 200) {
    const auto item = static_cast<alloc::ItemId>(rng.uniform_index(kFig5Items));
    const auto server =
        static_cast<trace::NodeId>(rng.uniform_index(kFig5Nodes));
    if (placement.server_full(server) || placement.has(item, server)) continue;
    placement.add(item, server);
    ++placed;
  }
  return placement;
}

std::vector<std::pair<alloc::ItemId, trace::NodeId>> fig5_probe_pairs(
    const alloc::Placement& placement) {
  std::vector<std::pair<alloc::ItemId, trace::NodeId>> probes;
  util::Rng rng(32);
  while (probes.size() < 512) {
    const auto item = static_cast<alloc::ItemId>(rng.uniform_index(kFig5Items));
    const auto server =
        static_cast<trace::NodeId>(rng.uniform_index(kFig5Nodes));
    if (!placement.has(item, server)) probes.emplace_back(item, server);
  }
  return probes;
}

bool same_placement(const alloc::Placement& a, const alloc::Placement& b) {
  if (a.num_items() != b.num_items() || a.num_servers() != b.num_servers()) {
    return false;
  }
  for (alloc::ItemId i = 0; i < a.num_items(); ++i) {
    for (trace::NodeId s = 0; s < a.num_servers(); ++s) {
      if (a.has(i, s) != b.has(i, s)) return false;
    }
  }
  return true;
}

void BM_MarginalGainNaive(benchmark::State& state) {
  const auto& g = fig5_instance();
  const utility::StepUtility u(10.0);
  const alloc::Placement placement = fig5_partial_placement();
  const auto probes = fig5_probe_pairs(placement);
  std::size_t k = 0;
  for (auto _ : state) {
    const auto [item, server] = probes[k];
    k = (k + 1) % probes.size();
    benchmark::DoNotOptimize(alloc::marginal_gain(placement, g.rates, g.demand,
                                                  u, g.servers, g.clients, item,
                                                  server));
  }
}
BENCHMARK(BM_MarginalGainNaive);

void BM_MarginalOracle(benchmark::State& state) {
  const auto& g = fig5_instance();
  const utility::StepUtility u(10.0);
  alloc::MarginalOracle oracle(g.rates, g.demand, u, g.servers, g.clients,
                               kFig5Items);
  oracle.reset(fig5_partial_placement());
  const auto probes = fig5_probe_pairs(fig5_partial_placement());
  std::size_t k = 0;
  for (auto _ : state) {
    const auto [item, server] = probes[k];
    k = (k + 1) % probes.size();
    benchmark::DoNotOptimize(oracle.marginal(item, server));
  }
}
BENCHMARK(BM_MarginalOracle);

void BM_LazyGreedyFig5Oracle(benchmark::State& state) {
  const auto& g = fig5_instance();
  const utility::StepUtility u(10.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        alloc::lazy_greedy_placement(g.rates, g.demand, u, g.servers,
                                     g.clients, kFig5Items, kFig5Capacity));
  }
}
BENCHMARK(BM_LazyGreedyFig5Oracle)->Unit(benchmark::kMillisecond);

void BM_LazyGreedyFig5Naive(benchmark::State& state) {
  const auto& g = fig5_instance();
  const utility::StepUtility u(10.0);
  alloc::Placement last(kFig5Items, kFig5Nodes, kFig5Capacity);
  for (auto _ : state) {
    auto placement = alloc::lazy_greedy_placement_naive(
        g.rates, g.demand, u, g.servers, g.clients, kFig5Items, kFig5Capacity);
    benchmark::DoNotOptimize(placement);
    last = std::move(placement);
  }
  // Acceptance check (untimed): the oracle-driven greedy must return the
  // naive placement bit for bit.
  const auto oracle_placement = alloc::lazy_greedy_placement(
      g.rates, g.demand, u, g.servers, g.clients, kFig5Items, kFig5Capacity);
  if (!same_placement(last, oracle_placement)) {
    state.SkipWithError("oracle and naive greedy placements differ");
  }
}
BENCHMARK(BM_LazyGreedyFig5Naive)->Unit(benchmark::kMillisecond);

void BM_LossTransformTabulated(benchmark::State& state) {
  const utility::TabulatedUtility u(
      {{0.0, 1.0}, {1.0, 0.8}, {5.0, 0.35}, {20.0, 0.05}, {60.0, 0.0}});
  double m = 1e-3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(u.expected_gain(m));
    m = m < 1e2 ? m * 1.1 : 1e-3;
  }
}
BENCHMARK(BM_LossTransformTabulated);

void BM_LossTransformCached(benchmark::State& state) {
  const utility::TabulatedUtility base(
      {{0.0, 1.0}, {1.0, 0.8}, {5.0, 0.35}, {20.0, 0.05}, {60.0, 0.0}});
  const utility::CachedTransform u(base);
  double m = 1e-3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(u.expected_gain(m));
    m = m < 1e2 ? m * 1.1 : 1e-3;
  }
}
BENCHMARK(BM_LossTransformCached);

void BM_PoissonTraceGeneration(benchmark::State& state) {
  util::Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trace::generate_poisson({50, 1000, 0.05}, rng));
  }
}
BENCHMARK(BM_PoissonTraceGeneration);

void BM_MobilityTraceGeneration(benchmark::State& state) {
  util::Rng rng(5);
  trace::RandomWaypointParams params;
  params.num_nodes = 50;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trace::generate_mobility_trace(params, 200, 200.0, rng));
  }
}
BENCHMARK(BM_MobilityTraceGeneration);

void BM_SimulatorQcr(benchmark::State& state) {
  const auto slots = state.range(0);
  util::Rng rng(6);
  auto trace = trace::generate_poisson({50, slots, 0.05}, rng);
  auto scenario = core::make_scenario(
      std::move(trace), core::Catalog::pareto(50, 1.0, 1.0), 5);
  utility::StepUtility u(10.0);
  for (auto _ : state) {
    util::Rng r = rng.split();
    benchmark::DoNotOptimize(
        core::run_qcr(scenario, u, core::QcrOptions{}, core::SimOptions{},
                      r));
  }
  state.SetItemsProcessed(state.iterations() * slots);
}
BENCHMARK(BM_SimulatorQcr)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

void BM_PhiClosedForm(benchmark::State& state) {
  utility::PowerUtility u(0.5);
  double x = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(utility::phi(u, 0.05, x));
    x = x < 50.0 ? x + 1.0 : 1.0;
  }
}
BENCHMARK(BM_PhiClosedForm);

void BM_PsiReaction(benchmark::State& state) {
  utility::StepUtility u(10.0);
  utility::ReactionFunction reaction(u, 0.05, 50.0, 0.25);
  double y = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(reaction(y));
    y = y < 50.0 ? y + 1.0 : 1.0;
  }
}
BENCHMARK(BM_PsiReaction);

void BM_DiscreteExpectedGain(benchmark::State& state) {
  utility::ExponentialUtility u(0.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(utility::discrete_expected_gain(u, 0.05));
  }
}
BENCHMARK(BM_DiscreteExpectedGain);

void BM_FitDelayUtility(benchmark::State& state) {
  util::Rng rng(11);
  std::vector<utility::FeedbackSample> samples;
  for (int k = 0; k < 10000; ++k) {
    const double d = rng.uniform(0.5, 100.0);
    samples.push_back({d, rng.bernoulli(std::exp(-0.05 * d)) ? 1.0 : 0.0});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(utility::fit_delay_utility(samples));
  }
}
BENCHMARK(BM_FitDelayUtility);

// Demand sampling at fig5/fig6 catalog scale (500 items): the legacy
// linear weighted_index scan vs the Vose alias tables the event-driven
// kernel draws from. Uniform client profile, so both paths differ only
// in the item draw — the per-request O(|items|) vs O(1) comparison.
void BM_DemandSampleLinear(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto catalog = core::Catalog::pareto(
      static_cast<core::ItemId>(n), 1.0, 1.0);
  std::vector<trace::NodeId> clients(50);
  std::iota(clients.begin(), clients.end(), trace::NodeId{0});
  const core::DemandProcess demand(catalog, clients);
  util::Rng rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(demand.sample_request_linear(rng));
  }
}
BENCHMARK(BM_DemandSampleLinear)->Arg(50)->Arg(500);

void BM_DemandSampleAlias(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto catalog = core::Catalog::pareto(
      static_cast<core::ItemId>(n), 1.0, 1.0);
  std::vector<trace::NodeId> clients(50);
  std::iota(clients.begin(), clients.end(), trace::NodeId{0});
  const core::DemandProcess demand(catalog, clients);
  util::Rng rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(demand.sample_request(rng));
  }
}
BENCHMARK(BM_DemandSampleAlias)->Arg(50)->Arg(500);

// Fig6-like sparse vehicular scenario for the kernel comparison: a week
// of 1-minute slots with 20 taxis leaves most slots without a meeting,
// which is exactly the regime next-event time advance is built for. The
// 500-item catalog matches the paper's trace experiments and makes the
// per-request sampling cost visible too.
struct Fig6Instance {
  core::Scenario scenario;
  alloc::Placement placement;
};

const Fig6Instance& fig6_instance() {
  static const Fig6Instance inst = [] {
    util::Rng rng(2027);
    trace::CabspottingLikeParams params;
    params.mobility.num_nodes = 20;
    // City-scale box: 20 taxis over 30 km leave most minutes contact-free
    // (like the real cab trace's off-peak hours), which is the regime the
    // event kernel exists for.
    params.mobility.area_size = 60000.0;
    params.duration = 10080;  // one week of 1-minute slots
    auto contact_trace = trace::generate_cabspotting_like(params, rng);
    // 500-item catalog at a moderate request rate: the per-request work
    // (creation, pending bookkeeping, fulfilment) is identical under both
    // kernels, so heavy demand would only dilute the time-advance
    // difference this pair measures. The demand-sampling difference has
    // its own dedicated pair (BM_DemandSample*).
    auto scenario = core::make_scenario(
        std::move(contact_trace), core::Catalog::pareto(500, 1.0, 0.75), 4);
    util::Rng prng = rng.split();
    const auto competitors = core::build_competitors(
        scenario, utility::StepUtility(100.0), core::OptMode::kHomogeneous,
        prng);
    // competitors[1] is UNI: utility-independent, cheap to build.
    return Fig6Instance{std::move(scenario), competitors[1].placement};
  }();
  return inst;
}

void run_fig6_kernel_bench(benchmark::State& state, core::SimKernel kernel) {
  const auto& g = fig6_instance();
  // Step utility as in the fig6(b) tau sweep: its value() is a compare,
  // so censoring cost shared by both kernels stays small.
  const utility::StepUtility u(100.0);
  util::Rng rng(9);
  core::SimOptions sim;
  sim.kernel = kernel;
  for (auto _ : state) {
    util::Rng r = rng.split();
    benchmark::DoNotOptimize(
        core::run_fixed(g.scenario, u, "UNI", g.placement, sim, r));
  }
  state.SetItemsProcessed(state.iterations() * g.scenario.trace.duration());
}

void BM_SimulateFig6Slot(benchmark::State& state) {
  run_fig6_kernel_bench(state, core::SimKernel::slot_stepped);
}
BENCHMARK(BM_SimulateFig6Slot)->Unit(benchmark::kMillisecond);

void BM_SimulateFig6Event(benchmark::State& state) {
  run_fig6_kernel_bench(state, core::SimKernel::event_driven);
  // Acceptance check (untimed): the kernels are distribution-identical,
  // so on this instance their fulfilment counts must land close.
  const auto& g = fig6_instance();
  const utility::StepUtility u(100.0);
  double totals[2] = {0.0, 0.0};
  for (int k = 0; k < 2; ++k) {
    const auto kernel =
        k == 0 ? core::SimKernel::slot_stepped : core::SimKernel::event_driven;
    for (int s = 0; s < 3; ++s) {
      core::SimOptions sim;
      sim.kernel = kernel;
      util::Rng r(100 + s);
      totals[k] += static_cast<double>(
          core::run_fixed(g.scenario, u, "UNI", g.placement, sim, r)
              .fulfillments);
    }
  }
  if (totals[1] < 0.7 * totals[0] || totals[1] > 1.3 * totals[0]) {
    state.SkipWithError("event kernel fulfilments diverge from slot kernel");
  }
}
BENCHMARK(BM_SimulateFig6Event)->Unit(benchmark::kMillisecond);

// Fig3-like faulty scenario on a sparse trace: 30 nodes meeting rarely
// (mu = 1e-4, ~0.04 meetings per slot) over 20000 slots with the full
// fault cocktail engaged. Before this PR a fault-active run silently
// fell back to slot stepping; this pair measures what riding the jump
// loop buys — geometric-skip crash scheduling replaces 30 Bernoulli
// draws per slot, and batched demand/metrics skip the >95% of slots
// where nothing happens.
const core::Scenario& fig3_faulty_scenario() {
  static const core::Scenario scenario = [] {
    util::Rng rng(2028);
    auto contact_trace = trace::generate_poisson({30, 20000, 0.0001}, rng);
    return core::make_scenario(std::move(contact_trace),
                               core::Catalog::pareto(100, 1.0, 0.1), 4);
  }();
  return scenario;
}

core::SimOptions fig3_fault_options(core::SimKernel kernel) {
  core::SimOptions sim;
  sim.kernel = kernel;
  sim.faults.p_drop = 0.05;
  sim.faults.p_truncate = 0.05;
  sim.faults.p_duplicate = 0.02;
  sim.faults.p_reorder = 0.1;
  sim.faults.p_crash = 0.0005;
  sim.faults.mean_downtime = 30.0;
  sim.faults.seed = 909;
  return sim;
}

void run_fig3_faulty_bench(benchmark::State& state, core::SimKernel kernel) {
  const auto& scenario = fig3_faulty_scenario();
  const utility::StepUtility u(200.0);
  util::Rng rng(10);
  for (auto _ : state) {
    util::Rng r = rng.split();
    benchmark::DoNotOptimize(core::run_qcr(
        scenario, u, core::QcrOptions{}, fig3_fault_options(kernel), r));
  }
  state.SetItemsProcessed(state.iterations() * scenario.trace.duration());
}

void BM_SimulateFig3FaultySlot(benchmark::State& state) {
  run_fig3_faulty_bench(state, core::SimKernel::slot_stepped);
}
BENCHMARK(BM_SimulateFig3FaultySlot)->Unit(benchmark::kMillisecond);

void BM_SimulateFig3FaultyEvent(benchmark::State& state) {
  run_fig3_faulty_bench(state, core::SimKernel::event_driven);
  // Acceptance check (untimed): the kernels agree in distribution, so
  // fulfilments and injected faults must land close across a few seeds.
  const auto& scenario = fig3_faulty_scenario();
  const utility::StepUtility u(200.0);
  double fulfilled[2] = {0.0, 0.0};
  double injected[2] = {0.0, 0.0};
  for (int k = 0; k < 2; ++k) {
    const auto kernel =
        k == 0 ? core::SimKernel::slot_stepped : core::SimKernel::event_driven;
    for (int s = 0; s < 3; ++s) {
      auto sim = fig3_fault_options(kernel);
      sim.faults.seed = static_cast<std::uint64_t>(7000 + s);
      util::Rng r(200 + s);
      const auto result =
          core::run_qcr(scenario, u, core::QcrOptions{}, sim, r);
      fulfilled[k] += static_cast<double>(result.fulfillments);
      injected[k] += static_cast<double>(result.faults.injected_events());
    }
  }
  if (fulfilled[1] < 0.7 * fulfilled[0] || fulfilled[1] > 1.3 * fulfilled[0]) {
    state.SkipWithError("faulty event kernel fulfilments diverge from slot");
  }
  if (injected[1] < 0.7 * injected[0] || injected[1] > 1.3 * injected[0]) {
    state.SkipWithError("faulty event kernel fault counts diverge from slot");
  }
}
BENCHMARK(BM_SimulateFig3FaultyEvent)->Unit(benchmark::kMillisecond);

// QCR expected-welfare probe at fig5 scale (98 nodes x 500 items): each
// iteration applies one metrics tick's worth of cache churn and then
// reads the probe. Scratch pays the O(items x clients) welfare() fold
// every tick; Incremental re-folds only the rows the churn dirtied
// (welfare_cached), which is what SimOptions::welfare_probe samples.
void run_welfare_probe_bench(benchmark::State& state, bool incremental) {
  const auto& g = fig5_instance();
  const utility::StepUtility u(10.0);
  alloc::MarginalOracle oracle(g.rates, g.demand, u, g.servers, g.clients,
                               kFig5Items);
  oracle.reset(fig5_partial_placement());
  util::Rng rng(33);
  for (auto _ : state) {
    for (int m = 0; m < 4; ++m) {
      const auto item =
          static_cast<alloc::ItemId>(rng.uniform_index(kFig5Items));
      const auto server =
          static_cast<trace::NodeId>(rng.uniform_index(kFig5Nodes));
      if (oracle.has(item, server)) {
        oracle.remove(item, server);
      } else {
        oracle.add(item, server);
      }
    }
    benchmark::DoNotOptimize(incremental ? oracle.welfare_cached()
                                         : oracle.welfare());
  }
  // Acceptance check (untimed): the incremental probe must match the
  // from-scratch evaluator on the final tracked state.
  if (oracle.welfare_cached() != oracle.welfare()) {
    state.SkipWithError("welfare_cached diverged from welfare()");
  }
}

void BM_QcrWelfareProbeScratch(benchmark::State& state) {
  run_welfare_probe_bench(state, false);
}
BENCHMARK(BM_QcrWelfareProbeScratch);

void BM_QcrWelfareProbeIncremental(benchmark::State& state) {
  run_welfare_probe_bench(state, true);
}
BENCHMARK(BM_QcrWelfareProbeIncremental);

// Intra-run meeting parallelism (SimOptions::meeting_parallelism,
// docs/perf.md §5) on a heavy-demand fig5-like instance: the Infocom-like
// conference population (98 nodes, dense slots) with the 500-item catalog
// and a request rate high enough that pending lists reach hundreds of
// entries. That regime puts the run's cost where the parallel path can
// reach it — the per-meeting O(pending x rho) fulfilment scans, planned
// across threads — while the sequential commits stay cheap (fixed UNI
// placement: no mandate work, and the compaction shifts unmatched runs
// as blocks). Intra1 exercises the plan/commit walk without a pool, so
// Intra8/Intra1 isolates the parallel gain from the split's own cost.
// Caveat: the ratio is only meaningful on a multi-core host. On a
// single-core machine (google_benchmark prints the CPU count in the run
// context) the IntraN entries necessarily record the fork/join barrier
// overhead of N-way oversubscription, not a speedup — see
// docs/perf.md §5.
struct IntraInstance {
  core::Scenario scenario;
  alloc::Placement placement;
};

const IntraInstance& intra_instance() {
  static const IntraInstance inst = [] {
    util::Rng rng(2029);
    trace::InfocomLikeParams params;
    params.num_nodes = kFig5Nodes;
    params.days = 1;
    auto contact_trace = trace::generate_infocom_like(params, rng);
    auto scenario = core::make_scenario(
        std::move(contact_trace),
        core::Catalog::pareto(kFig5Items, 1.0, 40.0), kFig5Capacity);
    util::Rng prng = rng.split();
    const auto competitors = core::build_competitors(
        scenario, utility::StepUtility(400.0), core::OptMode::kHomogeneous,
        prng);
    // competitors[1] is UNI: utility-independent, cheap to build.
    return IntraInstance{std::move(scenario), competitors[1].placement};
  }();
  return inst;
}

void run_intra_bench(benchmark::State& state, int meeting_parallelism) {
  const auto& g = intra_instance();
  const utility::StepUtility u(400.0);
  util::Rng rng(12);
  core::SimOptions sim;
  sim.meeting_parallelism = meeting_parallelism;
  for (auto _ : state) {
    util::Rng r = rng.split();
    benchmark::DoNotOptimize(
        core::run_fixed(g.scenario, u, "UNI", g.placement, sim, r));
  }
  state.SetItemsProcessed(state.iterations() * g.scenario.trace.duration());
}

void BM_SimulateFig5Intra1(benchmark::State& state) {
  run_intra_bench(state, 1);
}
BENCHMARK(BM_SimulateFig5Intra1)->Unit(benchmark::kMillisecond);

void BM_SimulateFig5Intra4(benchmark::State& state) {
  run_intra_bench(state, 4);
}
BENCHMARK(BM_SimulateFig5Intra4)->Unit(benchmark::kMillisecond);

void BM_SimulateFig5Intra8(benchmark::State& state) {
  run_intra_bench(state, 8);
  // Acceptance check (untimed): the parallel path must reproduce the
  // bit-locked sequential walk exactly, thread count notwithstanding.
  const auto& g = intra_instance();
  const utility::StepUtility u(400.0);
  core::SimulationResult results[2];
  for (int k = 0; k < 2; ++k) {
    core::SimOptions sim;
    sim.meeting_parallelism = k == 0 ? 0 : 8;
    util::Rng r(77);
    results[k] = core::run_fixed(g.scenario, u, "UNI", g.placement, sim, r);
  }
  const auto& a = results[0];
  const auto& b = results[1];
  if (a.total_gain != b.total_gain || a.fulfillments != b.fulfillments ||
      a.mean_delay != b.mean_delay ||
      a.mean_query_count != b.mean_query_count ||
      a.requests_created != b.requests_created ||
      a.censored_requests != b.censored_requests ||
      a.final_counts != b.final_counts) {
    state.SkipWithError("parallel meeting path diverged from sequential");
  }
}
BENCHMARK(BM_SimulateFig5Intra8)->Unit(benchmark::kMillisecond);

// The conflict scheduler alone on the intra instance's densest slot: the
// O(batch) wave/commit-run schedule every parallel meeting batch pays
// before planning.
void BM_PartitionSlot(benchmark::State& state) {
  const auto& g = intra_instance();
  const auto& tr = g.scenario.trace;
  std::span<const trace::ContactEvent> densest;
  for (trace::Slot s = 0; s < tr.duration(); ++s) {
    const auto events = tr.slot_events(s);
    if (events.size() > densest.size()) densest = events;
  }
  trace::WavePartitioner partitioner(tr.num_nodes());
  std::vector<std::uint32_t> order;
  std::vector<std::size_t> wave_ends;
  std::vector<std::size_t> commit_ends;
  for (auto _ : state) {
    partitioner.schedule(densest, order, wave_ends, commit_ends);
    benchmark::DoNotOptimize(order.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(densest.size()));
}
BENCHMARK(BM_PartitionSlot);

// Fig4-at-scale pair (docs/perf.md §6): one welfare evaluation of the
// same N = 500 homogeneous scenario, as a full event-kernel trial vs the
// mean-field discrete gain model. The mean-field number includes the
// whole per-evaluation cost — DiscreteGainTable build (O(N + T)) plus
// the O(I) welfare fold — i.e. everything that replaces one simulation
// trial in `fig4_homogeneous --eval mf`. The acceptance target is a
// >= 100x gap in favor of the mean field at this scale.
constexpr trace::NodeId kMfNodes = 500;
constexpr core::ItemId kMfItems = 50;
constexpr trace::Slot kMfSlots = 2000;
constexpr double kMfMu = 0.01;
constexpr int kMfCapacity = 4;

struct MeanFieldFig4Instance {
  core::Scenario scenario;
  alloc::Placement placement;   // UNI, utility-independent
  alloc::ItemCounts counts;     // the same UNI allocation in count space
};

const MeanFieldFig4Instance& mean_field_fig4_instance() {
  static const MeanFieldFig4Instance inst = [] {
    util::Rng rng(2030);
    auto contact_trace =
        trace::generate_poisson({kMfNodes, kMfSlots, kMfMu}, rng);
    auto scenario = core::make_scenario(
        std::move(contact_trace), core::Catalog::pareto(kMfItems, 1.0, 1.0),
        kMfCapacity);
    const auto counts = alloc::round_counts(
        alloc::uniform_allocation(kMfItems,
                                  kMfCapacity * static_cast<double>(kMfNodes),
                                  kMfNodes),
        static_cast<int>(kMfNodes));
    util::Rng prng = rng.split();
    auto placement =
        alloc::place_counts(counts, kMfNodes, kMfCapacity, prng);
    return MeanFieldFig4Instance{std::move(scenario), std::move(placement),
                                 counts};
  }();
  return inst;
}

void BM_SimulateFig4Event500(benchmark::State& state) {
  const auto& g = mean_field_fig4_instance();
  const utility::StepUtility u(10.0);
  util::Rng rng(13);
  core::SimOptions sim;
  sim.kernel = core::SimKernel::event_driven;
  for (auto _ : state) {
    util::Rng r = rng.split();
    benchmark::DoNotOptimize(
        core::run_fixed(g.scenario, u, "UNI", g.placement, sim, r));
  }
  state.SetItemsProcessed(state.iterations() * kMfSlots);
}
BENCHMARK(BM_SimulateFig4Event500)->Unit(benchmark::kMillisecond);

void BM_MeanFieldFig4(benchmark::State& state) {
  const auto& g = mean_field_fig4_instance();
  const utility::StepUtility u(10.0);
  core::MeanFieldModel model;
  model.mu = kMfMu;
  model.num_nodes = static_cast<double>(kMfNodes);
  model.horizon = kMfSlots;
  const auto& demand = g.scenario.catalog.demands();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::mean_field_welfare(g.counts, demand, u, model));
  }
  // Acceptance check (untimed): the mean-field value must land near the
  // event kernel's observed utility for the same frozen allocation (the
  // rigorous CI validation lives in tests/core/mean_field_test.cpp).
  const double mf = core::mean_field_welfare(g.counts, demand, u, model);
  core::SimOptions sim;
  sim.kernel = core::SimKernel::event_driven;
  double simulated = 0.0;
  for (int s = 0; s < 3; ++s) {
    util::Rng r(300 + s);
    simulated +=
        core::run_fixed(g.scenario, u, "UNI", g.placement, sim, r)
            .observed_utility() /
        3.0;
  }
  if (mf < 0.7 * simulated || mf > 1.3 * simulated) {
    state.SkipWithError("mean-field welfare diverges from event kernel");
  }
}
BENCHMARK(BM_MeanFieldFig4);

// Streaming-trace pair (docs/perf.md §6): a full STATIC trial including
// trace acquisition — materialize the whole ContactTrace first vs pull
// slot batches from the O(1)-memory GeneratedSource while simulating.
// Same generator draws, bit-identical results (checked untimed).
constexpr trace::PoissonTraceParams kStreamParams{100, 2000, 0.05};

const alloc::Placement& stream_placement() {
  static const alloc::Placement placement = [] {
    const auto counts = alloc::round_counts(
        alloc::uniform_allocation(
            kMfItems,
            kMfCapacity * static_cast<double>(kStreamParams.num_nodes),
            kStreamParams.num_nodes),
        static_cast<int>(kStreamParams.num_nodes));
    util::Rng prng(2031);
    return alloc::place_counts(counts, kStreamParams.num_nodes, kMfCapacity,
                               prng);
  }();
  return placement;
}

core::SimOptions stream_options() {
  core::SimOptions sim;
  sim.cache_capacity = kMfCapacity;
  sim.sticky_replicas = false;
  sim.initial_placement = stream_placement();
  return sim;
}

void BM_MaterializedTrace(benchmark::State& state) {
  const auto catalog = core::Catalog::pareto(kMfItems, 1.0, 1.0);
  const utility::StepUtility u(10.0);
  const auto sim = stream_options();
  core::StaticPolicy policy;
  for (auto _ : state) {
    util::Rng gen(4040);
    const auto tr = trace::generate_poisson(kStreamParams, gen);
    util::Rng r(14);
    benchmark::DoNotOptimize(core::simulate(tr, catalog, u, policy, sim, r));
  }
  state.SetItemsProcessed(state.iterations() * kStreamParams.duration);
}
BENCHMARK(BM_MaterializedTrace)->Unit(benchmark::kMillisecond);

void BM_StreamingTrace(benchmark::State& state) {
  const auto catalog = core::Catalog::pareto(kMfItems, 1.0, 1.0);
  const utility::StepUtility u(10.0);
  const auto sim = stream_options();
  core::StaticPolicy policy;
  for (auto _ : state) {
    trace::GeneratedSource source(kStreamParams, util::Rng(4040));
    util::Rng r(14);
    benchmark::DoNotOptimize(
        core::simulate(source, catalog, u, policy, sim, r));
  }
  state.SetItemsProcessed(state.iterations() * kStreamParams.duration);
  // Acceptance check (untimed): the streamed run must be bit-identical
  // to the materialized one for the same generator seed.
  util::Rng gen(4040);
  const auto tr = trace::generate_poisson(kStreamParams, gen);
  util::Rng r1(14);
  const auto a = core::simulate(tr, catalog, u, policy, sim, r1);
  trace::GeneratedSource source(kStreamParams, util::Rng(4040));
  util::Rng r2(14);
  const auto b = core::simulate(source, catalog, u, policy, sim, r2);
  if (a.total_gain != b.total_gain || a.fulfillments != b.fulfillments ||
      a.requests_created != b.requests_created ||
      a.final_counts != b.final_counts) {
    state.SkipWithError("streamed run diverged from materialized trace");
  }
}
BENCHMARK(BM_StreamingTrace)->Unit(benchmark::kMillisecond);

void BM_SimulatorStatic(benchmark::State& state) {
  util::Rng rng(7);
  auto trace = trace::generate_poisson({50, 2000, 0.05}, rng);
  auto scenario = core::make_scenario(
      std::move(trace), core::Catalog::pareto(50, 1.0, 1.0), 5);
  utility::StepUtility u(10.0);
  util::Rng pr = rng.split();
  const auto set =
      core::build_competitors(scenario, u, core::OptMode::kHomogeneous, pr);
  for (auto _ : state) {
    util::Rng r = rng.split();
    benchmark::DoNotOptimize(core::run_fixed(
        scenario, u, "OPT", set[0].placement, core::SimOptions{}, r));
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_SimulatorStatic)->Unit(benchmark::kMillisecond);

}  // namespace

// google-benchmark's own `library_build_type` context reflects how the
// *benchmark library* was compiled (always debug for the distro package);
// scripts/bench_snapshot.sh gates snapshots on how THIS binary was built,
// which CMake passes through as IMPATIENCE_BUILD_TYPE.
#ifndef IMPATIENCE_BUILD_TYPE
#define IMPATIENCE_BUILD_TYPE "unspecified"
#endif

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::AddCustomContext("impatience_build_type", IMPATIENCE_BUILD_TYPE);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
