// Engine micro-benchmarks (google-benchmark): transform evaluation,
// solvers, trace generation and simulator throughput.
#include <benchmark/benchmark.h>

#include "impatience/alloc/heuristics.hpp"
#include "impatience/alloc/rounding.hpp"
#include "impatience/alloc/solvers.hpp"
#include "impatience/core/experiment.hpp"
#include "impatience/trace/generators.hpp"
#include "impatience/util/math.hpp"
#include "impatience/utility/discrete.hpp"
#include "impatience/utility/families.hpp"
#include "impatience/utility/fit.hpp"
#include "impatience/utility/reaction.hpp"

using namespace impatience;

namespace {

std::vector<double> pareto_demand(std::size_t n) {
  std::vector<double> d(n);
  for (std::size_t i = 0; i < n; ++i) d[i] = 1.0 / static_cast<double>(i + 1);
  return d;
}

void BM_RngUniform(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.uniform());
  }
}
BENCHMARK(BM_RngUniform);

void BM_RngPoisson(benchmark::State& state) {
  util::Rng rng(2);
  const double lambda = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.poisson(lambda));
  }
}
BENCHMARK(BM_RngPoisson)->Arg(1)->Arg(50);

void BM_QuadratureLossTransform(benchmark::State& state) {
  // The numeric fallback path (tabulated utilities use closed forms; this
  // measures integrate_to_inf on a smooth integrand).
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::integrate_to_inf(
        [](double t) { return std::exp(-0.5 * t) * 0.3 * std::exp(-0.3 * t); }));
  }
}
BENCHMARK(BM_QuadratureLossTransform);

void BM_WelfareHomogeneous(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto demand = pareto_demand(n);
  alloc::ItemCounts x;
  x.x.assign(n, 5.0);
  utility::StepUtility u(10.0);
  alloc::HomogeneousModel m{0.05, 50, 50, alloc::SystemMode::kPureP2P};
  for (auto _ : state) {
    benchmark::DoNotOptimize(alloc::welfare_homogeneous(x, demand, u, m));
  }
}
BENCHMARK(BM_WelfareHomogeneous)->Arg(50)->Arg(500);

void BM_HomogeneousGreedy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto demand = pareto_demand(n);
  utility::StepUtility u(10.0);
  alloc::HomogeneousModel m{0.05, 50, 50, alloc::SystemMode::kPureP2P};
  for (auto _ : state) {
    benchmark::DoNotOptimize(alloc::homogeneous_greedy(demand, u, m, 250));
  }
}
BENCHMARK(BM_HomogeneousGreedy)->Arg(50)->Arg(500);

void BM_RelaxedOptimum(benchmark::State& state) {
  const auto demand = pareto_demand(50);
  utility::PowerUtility u(0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        alloc::relaxed_optimum(demand, u, 0.05, 50.0, 250.0));
  }
}
BENCHMARK(BM_RelaxedOptimum);

void BM_LazyGreedyPlacement(benchmark::State& state) {
  const auto n = static_cast<trace::NodeId>(state.range(0));
  util::Rng rng(3);
  const auto trace = trace::generate_poisson({n, 500, 0.05}, rng);
  const auto rates = trace::estimate_rates(trace);
  const auto demand = pareto_demand(n);
  utility::StepUtility u(10.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        alloc::lazy_greedy_pure_p2p(rates, demand, u, n, 5));
  }
}
BENCHMARK(BM_LazyGreedyPlacement)->Arg(25)->Arg(50);

void BM_PoissonTraceGeneration(benchmark::State& state) {
  util::Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trace::generate_poisson({50, 1000, 0.05}, rng));
  }
}
BENCHMARK(BM_PoissonTraceGeneration);

void BM_MobilityTraceGeneration(benchmark::State& state) {
  util::Rng rng(5);
  trace::RandomWaypointParams params;
  params.num_nodes = 50;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trace::generate_mobility_trace(params, 200, 200.0, rng));
  }
}
BENCHMARK(BM_MobilityTraceGeneration);

void BM_SimulatorQcr(benchmark::State& state) {
  const auto slots = state.range(0);
  util::Rng rng(6);
  auto trace = trace::generate_poisson({50, slots, 0.05}, rng);
  auto scenario = core::make_scenario(
      std::move(trace), core::Catalog::pareto(50, 1.0, 1.0), 5);
  utility::StepUtility u(10.0);
  for (auto _ : state) {
    util::Rng r = rng.split();
    benchmark::DoNotOptimize(
        core::run_qcr(scenario, u, core::QcrOptions{}, core::SimOptions{},
                      r));
  }
  state.SetItemsProcessed(state.iterations() * slots);
}
BENCHMARK(BM_SimulatorQcr)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

void BM_PhiClosedForm(benchmark::State& state) {
  utility::PowerUtility u(0.5);
  double x = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(utility::phi(u, 0.05, x));
    x = x < 50.0 ? x + 1.0 : 1.0;
  }
}
BENCHMARK(BM_PhiClosedForm);

void BM_PsiReaction(benchmark::State& state) {
  utility::StepUtility u(10.0);
  utility::ReactionFunction reaction(u, 0.05, 50.0, 0.25);
  double y = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(reaction(y));
    y = y < 50.0 ? y + 1.0 : 1.0;
  }
}
BENCHMARK(BM_PsiReaction);

void BM_DiscreteExpectedGain(benchmark::State& state) {
  utility::ExponentialUtility u(0.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(utility::discrete_expected_gain(u, 0.05));
  }
}
BENCHMARK(BM_DiscreteExpectedGain);

void BM_FitDelayUtility(benchmark::State& state) {
  util::Rng rng(11);
  std::vector<utility::FeedbackSample> samples;
  for (int k = 0; k < 10000; ++k) {
    const double d = rng.uniform(0.5, 100.0);
    samples.push_back({d, rng.bernoulli(std::exp(-0.05 * d)) ? 1.0 : 0.0});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(utility::fit_delay_utility(samples));
  }
}
BENCHMARK(BM_FitDelayUtility);

void BM_SimulatorStatic(benchmark::State& state) {
  util::Rng rng(7);
  auto trace = trace::generate_poisson({50, 2000, 0.05}, rng);
  auto scenario = core::make_scenario(
      std::move(trace), core::Catalog::pareto(50, 1.0, 1.0), 5);
  utility::StepUtility u(10.0);
  util::Rng pr = rng.split();
  const auto set =
      core::build_competitors(scenario, u, core::OptMode::kHomogeneous, pr);
  for (auto _ : state) {
    util::Rng r = rng.split();
    benchmark::DoNotOptimize(core::run_fixed(
        scenario, u, "OPT", set[0].placement, core::SimOptions{}, r));
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_SimulatorStatic)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
